// Command fsbench runs one workload against one configured stack and
// prints a full-disclosure report: multi-run summary with confidence
// intervals, refusal flags, the latency histogram, and the workload's
// dimension classification.
//
// Usage:
//
//	fsbench -workload randomread -fs ext2 -runs 10 -duration 60s
//	fsbench -workload randomread -arrival poisson -rate 150
//	fsbench -wdl my-workload.wdl -fs xfs -cold
//	fsbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	fsbench "repro"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "randomread", "stock personality to run (see -list)")
		wdlPath      = flag.String("wdl", "", "WDL workload file (overrides -workload)")
		fsName       = flag.String("fs", "ext2", "file system model: ext2, ext3, xfs")
		devName      = flag.String("device", "hdd", "device model: hdd, ssd, ramdisk, nvme")
		nvmeChannels = flag.Int("nvme-channels", 0, "NVMe service channels (device-side concurrency; 0 = model default, 4)")
		ramMB        = flag.Int64("ram", 512, "RAM in MB")
		reserveMB    = flag.Int64("os-reserve", 102, "mean OS-reserved memory in MB")
		jitterMB     = flag.Int64("jitter", 2, "per-run OS reserve stddev in MB")
		policy       = flag.String("policy", "lru", "cache eviction policy: lru, fifo, clock, random, 2q, arc")
		queueDepth   = flag.Int("queue-depth", 0, "device queue reorder window (0 = 32; 1 disables reordering)")
		sched        = flag.String("sched", "", "I/O scheduler: fcfs, elevator, ncq, cfq (default elevator)")
		readahead    = flag.String("readahead", "", "readahead override: none, fixed, adaptive (default: FS hint)")
		l2MB         = flag.Int64("l2", 0, "flash second-tier cache in MB (0 = none)")
		arrival      = flag.String("arrival", "", "override every thread class's arrival process: closed, poisson, uniform, burst (default: the workload's own)")
		rate         = flag.Float64("rate", 0, "offered ops/sec per thread class for open-loop arrivals (with -arrival)")
		burst        = flag.Int("burst", 8, "op instances per arrival epoch (with -arrival burst)")
		runs         = flag.Int("runs", 5, "independent runs")
		duration     = flag.String("duration", "60s", "virtual run length")
		window       = flag.String("window", "30s", "measurement window at the end of each run")
		cold         = flag.Bool("cold", false, "drop caches after setup (cold start)")
		seed         = flag.Uint64("seed", 1, "base seed")
		parallel     = flag.Int("parallel", 0, "concurrent runs, 0 = GOMAXPROCS (results are identical at any setting)")
		shards       = flag.Int("shards", 1, "event-loop shards per run; >1 models N replica stacks each serving 1/N of the threads (see DESIGN.md §9)")
		shardMode    = flag.String("shard-mode", "", "shard partitioning with -shards: empty = replica (N private devices, execution knob), shared-device = one device shard serving N thread shards (measured configuration; see DESIGN.md §9)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		warehouseDir = flag.String("warehouse", "", "archive the full result (per-run samples and histograms) to this results-warehouse directory")
		progress     = flag.Bool("progress", true, "report per-run progress on stderr")
		list         = flag.Bool("list", false, "list stock personalities and exit")
		showHist     = flag.Bool("hist", true, "print the latency histogram")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *list {
		fmt.Println("stock personalities:")
		for _, name := range workload.Personalities() {
			fmt.Printf("  %s\n", name)
		}
		return
	}

	w, err := loadWorkload(*wdlPath, *workloadName)
	if err != nil {
		fatal(err)
	}
	if *arrival != "" {
		kind, err := workload.ParseArrivalKind(*arrival)
		if err != nil {
			fatal(fmt.Errorf("bad -arrival: %w", err))
		}
		for i := range w.Threads {
			w.Threads[i].Arrival = workload.Arrival{Kind: kind, Rate: *rate, Burst: *burst}
		}
		if err := w.Validate(); err != nil {
			fatal(fmt.Errorf("-arrival override: %w", err))
		}
	}
	dur, err := workload.ParseDuration(*duration)
	if err != nil {
		fatal(fmt.Errorf("bad -duration: %w", err))
	}
	win, err := workload.ParseDuration(*window)
	if err != nil {
		fatal(fmt.Errorf("bad -window: %w", err))
	}

	stack := fsbench.StackConfig{
		FS:              *fsName,
		Device:          *devName,
		NVMeChannels:    *nvmeChannels,
		DiskBytes:       64 << 30,
		RAMBytes:        *ramMB << 20,
		OSReserveBytes:  *reserveMB << 20,
		OSReserveJitter: *jitterMB << 20,
		CachePolicy:     *policy,
		QueueDepth:      *queueDepth,
		Scheduler:       *sched,
		Readahead:       *readahead,
		L2Bytes:         *l2MB << 20,
		Shards:          *shards,
		ShardMode:       *shardMode,
	}

	fmt.Printf("workload: %s\nstack:    %s\n", w.Name, stack)
	cov := core.ClassifyWorkload(w, stack.CacheBytesMean())
	var dims []string
	for _, d := range core.AllDimensions() {
		if cov[d] != core.NotCovered {
			dims = append(dims, fmt.Sprintf("%s(%s)", d, cov[d]))
		}
	}
	fmt.Printf("measures: %s\n\n", strings.Join(dims, " "))

	exp := &fsbench.Experiment{
		Name:          w.Name,
		Stack:         stack,
		Workload:      w,
		Runs:          *runs,
		Duration:      dur,
		MeasureWindow: win,
		ColdCache:     *cold,
		Seed:          *seed,
		Parallelism:   *parallel,
	}
	if *warehouseDir != "" {
		st, err := warehouse.Open(*warehouseDir)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		st.GitRev = warehouse.GitRev()
		exp.Recorder = st
	}
	progressOpen := false
	if *progress {
		exp.Progress = func(ev fsbench.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "\rrun %d/%d", ev.Done, ev.Total)
			progressOpen = ev.Done != ev.Total
			if !progressOpen {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := exp.Run()
	if err != nil {
		if progressOpen {
			fmt.Fprintln(os.Stderr) // terminate the \r progress line
		}
		fatal(err)
	}

	t := &report.Table{
		Title:   fmt.Sprintf("%s: %d runs x %s (window %s)", w.Name, *runs, dur, win),
		Headers: []string{"run", "seed", "ops/s", "cache MB", "hit ratio", "errors"},
	}
	for i, m := range res.PerRun {
		t.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", m.Seed),
			fmt.Sprintf("%.1f", m.Throughput),
			fmt.Sprintf("%d", m.CacheBytes>>20),
			fmt.Sprintf("%.3f", m.HitRatio),
			fmt.Sprintf("%d", m.Errors),
		)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}
	s := res.Throughput
	fmt.Printf("\nthroughput: mean=%.1f ops/s  sd=%.1f  rsd=%.1f%%  95%% CI [%.1f, %.1f]\n",
		s.Mean, s.StdDev, s.RSD*100, s.CI95Lo, s.CI95Hi)
	if n := w.TotalThreads(); n > 1 {
		// Per-thread fairness: who actually got serviced. Jain = 1.0
		// means equal shares; starvation pushes it toward 1/threads.
		sp := res.PerOwner.Spread(n)
		if len(w.Threads) == 1 {
			fmt.Printf("fairness:   jain=%.3f over %d threads (ops min=%d max=%d)\n",
				res.Jain, n, sp.MinOps, sp.MaxOps)
		} else {
			// Mixed thread classes do different work, so one index over
			// all threads would conflate workload asymmetry with
			// scheduler unfairness; report the split per class
			// (OwnerIDs follow thread-spec declaration order).
			parts := ""
			ops := res.PerOwner.OpsPadded(n)
			off := 0
			for _, ts := range w.Threads {
				class := ops[off : off+ts.Count]
				off += ts.Count
				if ts.Count > 1 {
					parts += fmt.Sprintf("  %s=%.3f", ts.Name, fsbench.JainIndexCounts(class))
				}
			}
			if parts != "" {
				fmt.Printf("fairness:   per-class jain:%s (ops min=%d max=%d)\n",
					parts, sp.MinOps, sp.MaxOps)
			}
		}
	}
	if res.Load.Offered > 0 {
		// Open-loop disclosure: how much of the offered load the stack
		// absorbed, and how deep the arrival backlog got.
		fmt.Printf("open loop:  offered=%d completed=%d (%.1f%%) backlog peak=%d\n",
			res.Load.Offered, res.Load.Completed,
			res.Load.CompletionRatio()*100, res.Load.BacklogPeak)
	}
	fmt.Printf("verdict:    %s\n", res.Flags)
	if res.Flags.Any() {
		fmt.Println()
		if res.Flags.Bimodal {
			fmt.Println("  ! latency is multi-modal: report the histogram, not the mean")
		}
		if res.Flags.NonStationary {
			fmt.Println("  ! throughput never reached steady state: report the whole curve")
		}
		if res.Flags.HighVariance {
			fmt.Println("  ! run-to-run variance is high: single-run numbers are meaningless")
		}
	}
	if *showHist {
		fmt.Println()
		if err := report.Histogram(os.Stdout, "operation latency (log2 buckets)", res.Hist); err != nil {
			fatal(err)
		}
	}
}

func loadWorkload(wdlPath, name string) (*fsbench.Workload, error) {
	if wdlPath != "" {
		f, err := os.Open(wdlPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return fsbench.ParseWDL(f)
	}
	w, ok := fsbench.WorkloadByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown personality %q (try -list)", name)
	}
	return w, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
	os.Exit(1)
}
