package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestJSONOutput drives the CLI path end to end against a seeded
// fixture: findings come out one JSON object per line, positions are
// module-root-relative, and the stream round-trips through the
// decoder that downstream tooling would use.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	diags, err := run([]string{"../../internal/analysis/testdata/percentile"}, true, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 4 {
		t.Fatalf("percentile fixture has 4 unsuppressed findings, got %d: %v", len(diags), diags)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(diags) {
		t.Errorf("want one JSON line per diagnostic, got %d lines for %d findings", got, len(diags))
	}
	decoded, err := analysis.DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decoded {
		if d != diags[i] {
			t.Errorf("diagnostic %d changed in transit: %+v vs %+v", i, d, diags[i])
		}
		if d.Rule != "percentile" {
			t.Errorf("diagnostic %d: rule %q, want percentile", i, d.Rule)
		}
		if d.File != "internal/analysis/testdata/percentile/fixture.go" {
			t.Errorf("diagnostic %d: position %q not module-root-relative", i, d.File)
		}
	}
}

// TestExpandWildcard pins the pattern grammar: "./..." walks package
// directories and skips testdata.
func TestExpandWildcard(t *testing.T) {
	dirs, err := expand([]string{"../../internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || !strings.HasSuffix(dirs[0], "analysis") {
		t.Errorf("expand found %v, want just the analysis package dir", dirs)
	}
}
