// Command fslint runs the repository's domain lint rules — the
// determinism and accounting invariants of DESIGN.md §11 — over the
// module and exits nonzero on findings.
//
// Usage:
//
//	fslint ./...            # lint every package under the cwd
//	fslint ./internal/sim   # lint one directory
//	fslint -json ./...      # one JSON diagnostic per line
//	fslint -rules           # list registered rules and exit
//
// Findings print as file:line:col: rule: message. A site that is
// deliberately exempt carries an "//fslint:ignore <rule> <reason>"
// comment on its line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit one JSON diagnostic per line (rule, file, line, col, message)")
		listRules = flag.Bool("rules", false, "list registered rules and exit")
	)
	flag.Parse()

	if *listRules {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := run(patterns, *jsonOut, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fslint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func run(patterns []string, jsonOut bool, out io.Writer) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return nil, err
	}
	dirs, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	diags := analysis.RunAnalyzers(loader.Fset, pkgs, analysis.All())
	rel(diags, loader.ModuleRoot())
	if jsonOut {
		if err := analysis.EncodeJSON(out, diags); err != nil {
			return nil, err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	return diags, nil
}

// expand resolves the "./..." wildcard and plain directory patterns
// into package directories.
func expand(patterns []string) ([]string, error) {
	var dirs []string
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			sub, err := analysis.Walk(root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, filepath.Clean(pat))
	}
	return dirs, nil
}

// rel rewrites absolute file positions relative to the module root
// so output is stable across checkouts.
func rel(diags []analysis.Diagnostic, root string) {
	for i := range diags {
		abs, err := filepath.Abs(diags[i].File)
		if err != nil {
			continue
		}
		if r, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(r, "..") {
			diags[i].File = r
		}
	}
}
