// Command fstable prints the paper's Table 1 benchmark survey and,
// given a workload, classifies which file-system dimensions it
// actually measures — the question the paper says researchers never
// ask. Pointed at a results warehouse, it becomes the archive's query
// front end: list what was measured, pool filtered run-sets, and gate
// a candidate against a baseline statistically.
//
// Usage:
//
//	fstable                         # print Table 1
//	fstable -csv                    # ... as CSV
//	fstable -classify randomread    # classify a stock personality
//	fstable -classify-wdl w.wdl     # classify a WDL workload
//
//	fstable -warehouse dir                         # list archived run-sets
//	fstable -warehouse dir -query device=nvme      # pooled stats for a selection
//	fstable -warehouse dir -compare -base git_rev=abc123 -cand git_rev=def456
//
// Selectors are comma-separated key=value pairs over the archive's
// query dimensions: name, personality, fs, device, scheduler,
// arrival, config (fingerprint), git_rev. -compare exits 1 when any
// metric regresses at the gate's alpha.
package main

import (
	"flag"
	"fmt"
	"os"

	fsbench "repro"
	"repro/internal/core"
	"repro/internal/survey"
)

func main() {
	var (
		asCSV        = flag.Bool("csv", false, "emit CSV instead of the text table")
		classify     = flag.String("classify", "", "classify a stock personality by name")
		classifyWDL  = flag.String("classify-wdl", "", "classify a WDL workload file")
		cacheMB      = flag.Int64("cache", 410, "assumed page-cache size in MB for classification")
		warehouseDir = flag.String("warehouse", "", "results-warehouse directory to query")
		query        = flag.String("query", "", "selector: pooled stats for matching records (with -warehouse)")
		compare      = flag.Bool("compare", false, "gate -cand against -base statistically (with -warehouse)")
		baseSel      = flag.String("base", "", "baseline selector for -compare")
		candSel      = flag.String("cand", "", "candidate selector for -compare")
		alpha        = flag.Float64("alpha", 0.01, "family-wise significance level for -compare")
	)
	flag.Parse()

	switch {
	case *warehouseDir != "":
		if err := warehouseMain(*warehouseDir, *query, *compare, *baseSel, *candSel, *alpha); err != nil {
			fatal(err)
		}
	case *classify != "" || *classifyWDL != "":
		w, err := load(*classify, *classifyWDL)
		if err != nil {
			fatal(err)
		}
		cov := core.ClassifyWorkload(w, *cacheMB<<20)
		fmt.Printf("workload %q on a %d MB cache measures:\n", w.Name, *cacheMB)
		for _, d := range core.AllDimensions() {
			fmt.Printf("  %-10s %s\n", d, describe(cov[d]))
		}
		fmt.Println("\nlegend: • isolates the dimension, ◦ exercises it without isolating it")
	case *asCSV:
		if err := survey.RenderCSV(os.Stdout, survey.Table1()); err != nil {
			fatal(err)
		}
	default:
		if err := survey.Render(os.Stdout, survey.Table1()); err != nil {
			fatal(err)
		}
	}
}

func load(name, wdl string) (*fsbench.Workload, error) {
	if wdl != "" {
		f, err := os.Open(wdl)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return fsbench.ParseWDL(f)
	}
	w, ok := fsbench.WorkloadByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown personality %q", name)
	}
	return w, nil
}

func describe(c core.Coverage) string {
	switch c {
	case core.Isolates:
		return "• isolates"
	case core.Touches:
		return "◦ exercises (does not isolate)"
	default:
		return "  not measured"
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fstable: %v\n", err)
	os.Exit(1)
}
