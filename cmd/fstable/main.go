// Command fstable prints the paper's Table 1 benchmark survey and,
// given a workload, classifies which file-system dimensions it
// actually measures — the question the paper says researchers never
// ask.
//
// Usage:
//
//	fstable                         # print Table 1
//	fstable -csv                    # ... as CSV
//	fstable -classify randomread    # classify a stock personality
//	fstable -classify-wdl w.wdl     # classify a WDL workload
package main

import (
	"flag"
	"fmt"
	"os"

	fsbench "repro"
	"repro/internal/core"
	"repro/internal/survey"
)

func main() {
	var (
		asCSV       = flag.Bool("csv", false, "emit CSV instead of the text table")
		classify    = flag.String("classify", "", "classify a stock personality by name")
		classifyWDL = flag.String("classify-wdl", "", "classify a WDL workload file")
		cacheMB     = flag.Int64("cache", 410, "assumed page-cache size in MB for classification")
	)
	flag.Parse()

	switch {
	case *classify != "" || *classifyWDL != "":
		w, err := load(*classify, *classifyWDL)
		if err != nil {
			fatal(err)
		}
		cov := core.ClassifyWorkload(w, *cacheMB<<20)
		fmt.Printf("workload %q on a %d MB cache measures:\n", w.Name, *cacheMB)
		for _, d := range core.AllDimensions() {
			fmt.Printf("  %-10s %s\n", d, describe(cov[d]))
		}
		fmt.Println("\nlegend: • isolates the dimension, ◦ exercises it without isolating it")
	case *asCSV:
		if err := survey.RenderCSV(os.Stdout, survey.Table1()); err != nil {
			fatal(err)
		}
	default:
		if err := survey.Render(os.Stdout, survey.Table1()); err != nil {
			fatal(err)
		}
	}
}

func load(name, wdl string) (*fsbench.Workload, error) {
	if wdl != "" {
		f, err := os.Open(wdl)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return fsbench.ParseWDL(f)
	}
	w, ok := fsbench.WorkloadByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown personality %q", name)
	}
	return w, nil
}

func describe(c core.Coverage) string {
	switch c {
	case core.Isolates:
		return "• isolates"
	case core.Touches:
		return "◦ exercises (does not isolate)"
	default:
		return "  not measured"
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fstable: %v\n", err)
	os.Exit(1)
}
