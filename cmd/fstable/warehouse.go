package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/warehouse"
	"repro/internal/warehouse/gate"
)

// warehouseMain dispatches the archive modes: list (default), -query,
// and -compare.
func warehouseMain(dir, query string, compare bool, baseSel, candSel string, alpha float64) error {
	st, err := warehouse.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	set, err := st.Load()
	if err != nil {
		return err
	}
	if len(set) == 0 {
		return fmt.Errorf("warehouse %s holds no records", dir)
	}
	switch {
	case compare:
		return compareSets(set, baseSel, candSel, alpha)
	case query != "":
		f, err := parseSelector(query)
		if err != nil {
			return err
		}
		return queryStats(set.Filter(f))
	default:
		return listSets(set)
	}
}

// parseSelector reads "key=value,key=value" into a warehouse Filter.
func parseSelector(sel string) (warehouse.Filter, error) {
	var f warehouse.Filter
	for _, pair := range strings.Split(sel, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return f, fmt.Errorf("selector %q: want key=value", pair)
		}
		switch strings.TrimSpace(k) {
		case "name":
			f.Name = v
		case "personality":
			f.Personality = v
		case "fs":
			f.FS = v
		case "device":
			f.Device = v
		case "scheduler", "sched":
			f.Scheduler = v
		case "arrival":
			f.Arrival = v
		case "config", "fingerprint":
			f.Fingerprint = v
		case "git_rev", "rev":
			f.GitRev = v
		case "trace":
			f.TraceDigest = v
		case "replay", "replay_mode":
			f.ReplayMode = v
		default:
			return f, fmt.Errorf("selector key %q: want name, personality, fs, device, scheduler, arrival, config, git_rev, trace, or replay", k)
		}
	}
	return f, nil
}

// listSets prints one row per (name, fingerprint) group — what the
// archive holds and how much evidence backs each configuration.
func listSets(set warehouse.Set) error {
	groups := set.GroupBy(func(r warehouse.Record) string {
		return r.Name + "\x00" + r.Fingerprint
	})
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := &report.Table{
		Title:   fmt.Sprintf("%d records, %d runs", len(set), set.Runs()),
		Headers: []string{"name", "config", "stack", "arrival", "trace", "shards", "mode", "records", "runs", "ops/s mean", "revs"},
	}
	for _, k := range keys {
		g := groups[k]
		r := g[0]
		revs := map[string]bool{}
		shardSet := map[int]bool{}
		for _, rec := range g {
			if rec.GitRev != "" {
				revs[rec.GitRev] = true
			}
			// Records pooled under one fingerprint may have run at
			// different shard counts (the knob is execution metadata,
			// not configuration): surface every count in the group.
			s := rec.Shards
			if s <= 0 {
				s = 1
			}
			shardSet[s] = true
		}
		shardCounts := make([]int, 0, len(shardSet))
		for s := range shardSet {
			shardCounts = append(shardCounts, s)
		}
		sort.Ints(shardCounts)
		shardCol := strings.Trim(strings.Join(strings.Fields(fmt.Sprint(shardCounts)), ","), "[]")
		// The mode is part of the fingerprint when set, so one group has
		// one mode; "replica" spells out the empty default.
		mode := r.ShardMode
		if mode == "" {
			mode = "replica"
		}
		// Traced runs carry the replayed trace's content digest; the
		// replay discipline already shows in the arrival column.
		traceCol := "-"
		if r.TraceDigest != "" {
			traceCol = r.TraceDigest[:min(8, len(r.TraceDigest))]
		}
		tp := g.Throughputs()
		mean := 0.0
		for _, v := range tp {
			mean += v
		}
		if len(tp) > 0 {
			mean /= float64(len(tp))
		}
		t.AddRow(
			r.Name,
			r.Fingerprint[:12],
			fmt.Sprintf("%s/%s/%s", r.FS, r.Device, r.Scheduler),
			r.Arrival,
			traceCol,
			shardCol,
			mode,
			fmt.Sprintf("%d", len(g)),
			fmt.Sprintf("%d", g.Runs()),
			fmt.Sprintf("%.0f", mean),
			fmt.Sprintf("%d", len(revs)),
		)
	}
	_, err := t.WriteTo(os.Stdout)
	return err
}

// queryStats prints the pooled distribution of a filtered run-set —
// the numbers a comparison would consume.
func queryStats(set warehouse.Set) error {
	if len(set) == 0 {
		return fmt.Errorf("no records match the selector")
	}
	fmt.Printf("%d records, %d runs, %d distinct configs\n\n",
		len(set), set.Runs(), len(set.Fingerprints()))
	tp := set.Throughputs()
	sum := stats.Summarize(tp)
	fmt.Printf("throughput: mean=%.1f ops/s  sd=%.1f  rsd=%.1f%%  n=%d\n",
		sum.Mean, sum.StdDev, sum.RSD*100, sum.N)
	h := set.MergedHist()
	if h.Count() > 0 {
		fmt.Printf("latency:    mean=%.0f ns  p50=%d  p99=%d  (%d ops)\n",
			h.Mean(), h.Percentile(50), h.Percentile(99), h.Count())
		fmt.Println()
		return report.Histogram(os.Stdout, "pooled operation latency (log2 buckets)", h)
	}
	return nil
}

// compareSets gates the candidate selection against the baseline
// selection and exits non-zero (via the returned error path in main)
// on regression.
func compareSets(set warehouse.Set, baseSel, candSel string, alpha float64) error {
	if baseSel == "" || candSel == "" {
		return fmt.Errorf("-compare needs both -base and -cand selectors")
	}
	bf, err := parseSelector(baseSel)
	if err != nil {
		return fmt.Errorf("-base: %w", err)
	}
	cf, err := parseSelector(candSel)
	if err != nil {
		return fmt.Errorf("-cand: %w", err)
	}
	base, cand := set.Filter(bf), set.Filter(cf)
	if len(base) == 0 {
		return fmt.Errorf("-base selector matches no records")
	}
	if len(cand) == 0 {
		return fmt.Errorf("-cand selector matches no records")
	}
	rep := gate.Compare(base, cand, gate.Config{Alpha: alpha})
	fmt.Print(rep)
	if regs := rep.Regressions(); len(regs) > 0 {
		names := make([]string, len(regs))
		for i, m := range regs {
			names[i] = m.Metric
		}
		fmt.Printf("\nREGRESSED: %s\n", strings.Join(names, ", "))
		os.Exit(1)
	}
	fmt.Println("\nno regressions at this alpha")
	return nil
}
