package main

import (
	"fmt"
	"io"
	"os"

	fsbench "repro"
	"repro/internal/report"
	"repro/internal/survey"
	"repro/internal/workload"
)

// Protocol is the measurement protocol: the paper's or a scaled quick
// variant.
type Protocol struct {
	Runs     int
	Duration fsbench.Time
	Window   fsbench.Time
	// Fig2Duration is the warm-up timeline length (the transition
	// itself takes ~15 minutes regardless of protocol).
	Fig2Duration fsbench.Time
	// Fig4Duration matches the paper's 280 s Figure 4 x-axis.
	Fig4Duration fsbench.Time
	Seed         uint64
	OutDir       string
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS). Every
	// figure is bit-identical at any setting.
	Parallelism int
	// Recorder, when non-nil, archives every figure's measured runs
	// (full per-run samples and histograms) — the -warehouse flag.
	Recorder fsbench.Recorder
	// Shards is the event-loop shard count stamped onto every
	// figure's stack — an execution knob like Parallelism, excluded
	// from warehouse fingerprints (DESIGN.md §9).
	Shards int
	// ShardMode selects the shard partitioning with Shards > 1. The
	// default (empty, replica) is a pure execution knob; shared-device
	// changes what the figures measure — one contended device behind
	// all shards — and is included in warehouse fingerprints.
	ShardMode string
	// Tiny shrinks the figures that hard-code their own sweeps
	// (contention, qdsweep, openloop) to a couple of points at the
	// protocol's durations. The output is still deterministic for a
	// given seed — the golden-file tests depend on that — but the
	// numbers are smoke-scale, not the paper's.
	Tiny bool
}

// stack stamps the protocol's execution knobs onto a figure's base
// stack, so -shards rides through every figure uniformly.
func (p Protocol) stack(s fsbench.StackConfig) fsbench.StackConfig {
	s.Shards = p.Shards
	s.ShardMode = p.ShardMode
	return s
}

// sweepProgress prints a stderr line as each sweep point completes.
func sweepProgress(ev fsbench.ProgressEvent) {
	if ev.PointDone {
		fmt.Fprintf(os.Stderr, "  point %d (x=%g) done, %d/%d runs [%s]\n",
			ev.Point, ev.X, ev.Done, ev.Total, ev.Flags)
	}
}

// expProgress reports pooled-experiment completions by name on stderr
// (the figures that fan several experiments through one Runner).
func expProgress(exps []*fsbench.Experiment) fsbench.ProgressFunc {
	return func(ev fsbench.ProgressEvent) {
		if ev.PointDone {
			fmt.Fprintf(os.Stderr, "  %s done, %d/%d runs [%s]\n",
				exps[ev.Point].Name, ev.Done, ev.Total, ev.Flags)
		}
	}
}

func quickProtocol() Protocol {
	return Protocol{
		Runs:         5,
		Duration:     60 * fsbench.Second,
		Window:       30 * fsbench.Second,
		Fig2Duration: 1200 * fsbench.Second,
		Fig4Duration: 280 * fsbench.Second,
	}
}

func paperProtocol() Protocol {
	return Protocol{
		Runs:         10,
		Duration:     20 * fsbench.Minute,
		Window:       fsbench.Minute,
		Fig2Duration: 1200 * fsbench.Second,
		Fig4Duration: 280 * fsbench.Second,
	}
}

func csvTo(w io.Writer, headers []string, rows [][]string) error {
	return report.CSV(w, headers, rows)
}

// figure1 sweeps file size 64 MB → 1024 MB in 64 MB steps on the
// paper stack, reporting throughput and relative standard deviation.
func figure1(proto Protocol) error {
	fmt.Println("=== Figure 1: Ext2 random-read throughput and relative std dev vs file size ===")
	stack := proto.stack(fsbench.PaperStack())
	var sizes []int64
	for mb := int64(64); mb <= 1024; mb += 64 {
		sizes = append(sizes, mb<<20)
	}
	sweep := fsbench.FileSizeSweep(stack, sizes, proto.Runs, proto.Duration, proto.Window, proto.Seed)
	sweep.Base.Recorder = proto.Recorder
	sweep.Parallelism = proto.Parallelism
	sweep.Progress = sweepProgress
	res, err := sweep.Run()
	if err != nil {
		return err
	}

	t := &report.Table{
		Headers: []string{"file size", "ops/sec", "rsd %", "95% CI", "flags"},
	}
	var rows [][]string
	var xs, tp, rsd []float64
	for _, p := range res.Points {
		s := p.Result.Throughput
		sizeMB := int64(p.X) >> 20
		t.AddRow(
			fmt.Sprintf("%dm", sizeMB),
			fmt.Sprintf("%.0f", s.Mean),
			fmt.Sprintf("%.1f", s.RSD*100),
			fmt.Sprintf("[%.0f, %.0f]", s.CI95Lo, s.CI95Hi),
			p.Result.Flags.String(),
		)
		rows = append(rows, []string{
			fmt.Sprintf("%d", sizeMB),
			fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.4f", s.RSD),
			fmt.Sprintf("%.2f", s.CI95Lo),
			fmt.Sprintf("%.2f", s.CI95Hi),
		})
		xs = append(xs, float64(sizeMB))
		tp = append(tp, s.Mean)
		rsd = append(rsd, s.RSD*100)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	frag := res.Fragility(0.10)
	fmt.Printf("\nfragility: %s\n\n", frag)
	chart := &report.Chart{
		Title:  "throughput (log scale, *) and RSD%% (o) vs file size",
		XLabel: "file size 64m..1024m",
		X:      xs,
		LogY:   true,
		Series: []report.ChartSeries{
			{Name: "ops/sec", Y: tp, Marker: '*'},
			{Name: "rsd %", Y: rsd, Marker: 'o'},
		},
	}
	if _, err := chart.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := writeCSV(proto, "figure1.csv",
		[]string{"file_mb", "ops_per_sec", "rsd", "ci95_lo", "ci95_hi"}, rows); err != nil {
		return err
	}

	// The §3.1 observation behind Figure 1: at fine granularity the
	// transition region's relative standard deviation "skyrockets by
	// up to 35% (not visible on the figure because it only depicts
	// data points with a 64MB step)". Sweep the region around the
	// cache size in 2 MB steps to expose it.
	fmt.Println("--- Figure 1 fine sweep: 2 MB steps across the cache boundary ---")
	var fine []int64
	for mb := int64(400); mb <= 420; mb += 2 {
		fine = append(fine, mb<<20)
	}
	fineSweep := fsbench.FileSizeSweep(stack, fine, proto.Runs, proto.Duration, proto.Window, proto.Seed+1000)
	fineSweep.Base.Recorder = proto.Recorder
	fineSweep.Parallelism = proto.Parallelism
	fineSweep.Progress = sweepProgress
	fineRes, err := fineSweep.Run()
	if err != nil {
		return err
	}
	ft := &report.Table{Headers: []string{"file size", "ops/sec", "rsd %", "flags"}}
	var fineRows [][]string
	maxRSD := 0.0
	for _, p := range fineRes.Points {
		s := p.Result.Throughput
		if s.RSD > maxRSD {
			maxRSD = s.RSD
		}
		ft.AddRow(
			fmt.Sprintf("%dm", int64(p.X)>>20),
			fmt.Sprintf("%.0f", s.Mean),
			fmt.Sprintf("%.1f", s.RSD*100),
			p.Result.Flags.String(),
		)
		fineRows = append(fineRows, []string{
			fmt.Sprintf("%d", int64(p.X)>>20),
			fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.4f", s.RSD),
		})
	}
	if _, err := ft.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nworst transition-region RSD: %.0f%% (paper: \"skyrockets by up to 35%%\")\n", maxRSD*100)
	fineFrag := fineRes.Fragility(0.10)
	if fineFrag.Found {
		fmt.Printf("fine fragility: fragile region %d..%d MB, max adjacent ratio %.1fx\n\n",
			int64(fineFrag.LoX)>>20, int64(fineFrag.HiX)>>20, fineFrag.MaxAdjacentRatio)
	} else {
		fmt.Printf("fine fragility: %s\n\n", fineFrag)
	}
	return writeCSV(proto, "figure1fine.csv",
		[]string{"file_mb", "ops_per_sec", "rsd"}, fineRows)
}

// figure1zoom reproduces the §3.1 zoom: the cliff localized to a few
// MB by self-scaling search.
func figure1zoom(proto Protocol) error {
	fmt.Println("=== Figure 1 zoom (§3.1): localizing the cliff ===")
	stack := proto.stack(fsbench.PaperStack())
	cfg := fsbench.SelfScaleConfig{
		Stack: stack,
		Runs:  1,
		// The cliff search needs many evaluations; keep each short.
		Duration:    30 * fsbench.Second,
		Window:      15 * fsbench.Second,
		Seed:        proto.Seed,
		Parallelism: proto.Parallelism,
		Recorder:    proto.Recorder,
	}
	base := fsbench.SelfScaleParams{IOSize: 2 << 10, ReadFrac: 1, SeqFrac: 0, Threads: 1}
	cliff, err := fsbench.CliffSearch(cfg, base, 384<<20, 448<<20, 3, 2<<20)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", cliff)
	fmt.Printf("paper: \"performance drops within an even narrower region — less than 6MB in size\"\n\n")
	return writeCSV(proto, "figure1zoom.csv",
		[]string{"lo_mb", "hi_mb", "width_mb", "ops_lo", "ops_hi", "evals"},
		[][]string{{
			fmt.Sprintf("%d", cliff.LoBytes>>20),
			fmt.Sprintf("%d", cliff.HiBytes>>20),
			fmt.Sprintf("%.1f", float64(cliff.Width())/(1<<20)),
			fmt.Sprintf("%.0f", cliff.OpsLo),
			fmt.Sprintf("%.0f", cliff.OpsHi),
			fmt.Sprintf("%d", cliff.Evaluations),
		}})
}

// figure2 regenerates the warm-up timelines: ext2, ext3, xfs reading
// a 410 MB file from cold, throughput every 10 s.
func figure2(proto Protocol) error {
	fmt.Println("=== Figure 2: Ext2, Ext3, XFS throughput by time (410 MB file, cold cache) ===")
	type curve struct {
		name  string
		rates []float64
	}
	fsNames := []string{"ext2", "ext3", "xfs"}
	exps := make([]*fsbench.Experiment, len(fsNames))
	for i, fsName := range fsNames {
		stack := proto.stack(fsbench.PaperStack())
		stack.FS = fsName
		stack.OSReserveJitter = 0 // one run per system, as in the paper
		exps[i] = &fsbench.Experiment{
			Name:           "fig2-" + fsName,
			Stack:          stack,
			Workload:       fsbench.RandomRead(410<<20, 2<<10, 1),
			Runs:           1,
			Duration:       proto.Fig2Duration,
			ColdCache:      true,
			Seed:           proto.Seed,
			SeriesInterval: 10 * fsbench.Second,
			Kinds:          []fsbench.OpKind{workload.OpReadRand},
			Recorder:       proto.Recorder,
		}
	}
	// The three systems are independent: run them as one pool.
	runner := fsbench.Runner{Parallelism: proto.Parallelism, Progress: expProgress(exps)}
	results, err := runner.RunExperiments(exps)
	if err != nil {
		return err
	}
	var curves []curve
	for i, res := range results {
		curves = append(curves, curve{fsNames[i], res.PerRun[0].Series.Rates()})
		fmt.Printf("  %s: non-stationary=%v (the whole curve is the result)\n",
			fsNames[i], res.Flags.NonStationary)
	}
	n := len(curves[0].rates)
	for _, c := range curves {
		if len(c.rates) < n {
			n = len(c.rates)
		}
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i * 10)
	}
	chart := &report.Chart{
		Title:  "ops/sec vs time (10s buckets)",
		XLabel: fmt.Sprintf("time 0..%ds", (n-1)*10),
		X:      xs,
		Series: []report.ChartSeries{
			{Name: "ext2", Y: curves[0].rates[:n], Marker: '2'},
			{Name: "ext3", Y: curves[1].rates[:n], Marker: '3'},
			{Name: "xfs", Y: curves[2].rates[:n], Marker: 'x'},
		},
	}
	if _, err := chart.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	headers := []string{"t_sec", "ext2_ops", "ext3_ops", "xfs_ops"}
	var rows [][]string
	for i := 0; i < n; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i*10),
			fmt.Sprintf("%.1f", curves[0].rates[i]),
			fmt.Sprintf("%.1f", curves[1].rates[i]),
			fmt.Sprintf("%.1f", curves[2].rates[i]),
		})
	}
	return writeCSV(proto, "figure2.csv", headers, rows)
}

// figure3 regenerates the three read-latency histograms: 64 MB,
// 1024 MB, and 25 GB files at steady state.
func figure3(proto Protocol) error {
	fmt.Println("=== Figure 3: Ext2 read latency histograms by file size ===")
	var rows [][]string
	sizes := []int64{64 << 20, 1024 << 20, 25 << 30}
	exps := make([]*fsbench.Experiment, len(sizes))
	for i, size := range sizes {
		exps[i] = &fsbench.Experiment{
			Name:          fmt.Sprintf("fig3-%dMB", size>>20),
			Stack:         proto.stack(fsbench.PaperStack()),
			Workload:      fsbench.RandomRead(size, 2<<10, 1),
			Runs:          1,
			Duration:      proto.Duration,
			MeasureWindow: proto.Window,
			Seed:          proto.Seed,
			Kinds:         []fsbench.OpKind{workload.OpReadRand},
			Recorder:      proto.Recorder,
		}
	}
	// The three file sizes are independent: run them as one pool.
	runner := fsbench.Runner{Parallelism: proto.Parallelism, Progress: expProgress(exps)}
	results, err := runner.RunExperiments(exps)
	if err != nil {
		return err
	}
	for i, res := range results {
		size := sizes[i]
		label := fmt.Sprintf("(%c) %d MB file", 'a'+len(rows)/33, size>>20)
		if size >= 1<<30 {
			label = fmt.Sprintf("(%c) %d GB file", 'a'+len(rows)/33, size>>30)
		}
		fmt.Println()
		if err := report.Histogram(os.Stdout, label, res.Hist); err != nil {
			return err
		}
		modes := res.Hist.Modes(0.05)
		fmt.Printf("  modes: %d %v  bimodal-flag: %v\n", len(modes), modes, res.Flags.Bimodal)
		pct := res.Hist.Percentages()
		for b := 0; b < 33; b++ {
			rows = append(rows, []string{
				fmt.Sprintf("%d", size>>20),
				fmt.Sprintf("%d", b),
				fmt.Sprintf("%.3f", pct[b]),
			})
		}
	}
	fmt.Println()
	return writeCSV(proto, "figure3.csv",
		[]string{"file_mb", "log2_bucket", "percent_ops"}, rows)
}

// figure4 regenerates the histogram-over-time view: 256 MB file on
// ext2, cold start, snapshots every 10 s for 280 s.
func figure4(proto Protocol) error {
	fmt.Println("=== Figure 4: latency histograms by time (Ext2, 256 MB file, cold cache) ===")
	stack := proto.stack(fsbench.PaperStack())
	stack.OSReserveJitter = 0
	exp := &fsbench.Experiment{
		Name:             "fig4",
		Stack:            stack,
		Workload:         fsbench.RandomRead(256<<20, 2<<10, 1),
		Runs:             1,
		Duration:         proto.Fig4Duration,
		ColdCache:        true,
		Seed:             proto.Seed,
		TimelineInterval: 10 * fsbench.Second,
		Kinds:            []fsbench.OpKind{workload.OpReadRand},
		Parallelism:      proto.Parallelism,
		Recorder:         proto.Recorder,
	}
	res, err := exp.Run()
	if err != nil {
		return err
	}
	tl := res.PerRun[0].Timeline
	var rows [][]string
	fmt.Println("\n  t(s)   dominant modes (log2 bucket: % of ops)")
	for i := 0; i < tl.Snapshots(); i++ {
		h := tl.At(i)
		if h == nil || h.Count() < 50 {
			continue // partial tail snapshots mislead
		}
		pct := h.Percentages()
		line := fmt.Sprintf("  %4d  ", i*10)
		for _, m := range h.Modes(0.05) {
			line += fmt.Sprintf(" %2d:%5.1f%%", m, pct[m])
		}
		fmt.Println(line)
		for b := 0; b < 33; b++ {
			if pct[b] == 0 {
				continue
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", i*10),
				fmt.Sprintf("%d", b),
				fmt.Sprintf("%.3f", pct[b]),
			})
		}
	}
	fmt.Println()
	return writeCSV(proto, "figure4.csv",
		[]string{"t_sec", "log2_bucket", "percent_ops"}, rows)
}

// figureContention is the new scaling-dimension figure the paper's
// Table 1 calls for but no surveyed benchmark isolates: thread count
// swept 1 → 64 at device queue depth 1 and 32. With the event-driven
// queue, throughput saturates once the disk is the bottleneck, the
// deeper window buys extra throughput via NCQ reordering, and p99
// latency inflates with contention.
func figureContention(proto Protocol) error {
	fmt.Println("=== Contention figure: thread-count sweep at queue depth 1 vs 32 ===")
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	fileBytes := int64(4 << 30)
	if proto.Tiny {
		counts = []int{1, 4, 16}
		// Setup cost is dominated by preallocating the file; 1 GB is
		// still ~2.5x the cache, so the points stay disk-bound.
		fileBytes = 1 << 30
	}
	mk := func(threads int) *fsbench.Workload {
		// Disk-bound random reads: a 4 GB file ≫ the 410 MB cache, and
		// wide enough on the 64 GB disk that reordering has seek
		// distance to reclaim.
		return fsbench.RandomRead(fileBytes, 2<<10, threads)
	}
	type depthCurve struct {
		depth int
		tp    []float64
		p99ms []float64
	}
	var curves []depthCurve
	for _, depth := range []int{1, 32} {
		stack := proto.stack(fsbench.PaperStack())
		stack.Scheduler = "ncq"
		stack.QueueDepth = depth
		sweep := fsbench.ThreadCountSweep(stack, mk, counts, proto.Runs,
			proto.Duration, proto.Window, proto.Seed+uint64(depth))
		sweep.Name = fmt.Sprintf("threadcount-qd%d", depth)
		sweep.Base.Recorder = proto.Recorder
		sweep.Parallelism = proto.Parallelism
		sweep.Progress = sweepProgress
		fmt.Printf("-- queue depth %d --\n", depth)
		res, err := sweep.Run()
		if err != nil {
			return err
		}
		c := depthCurve{depth: depth}
		for _, p := range res.Points {
			c.tp = append(c.tp, p.Result.Throughput.Mean)
			c.p99ms = append(c.p99ms, float64(p.Result.Hist.Percentile(99))/1e6)
		}
		curves = append(curves, c)
	}

	t := &report.Table{
		Headers: []string{"threads", "qd=1 ops/s", "qd=1 p99 ms", "qd=32 ops/s", "qd=32 p99 ms"},
	}
	var rows [][]string
	xs := make([]float64, len(counts))
	for i, n := range counts {
		xs[i] = float64(n)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", curves[0].tp[i]),
			fmt.Sprintf("%.1f", curves[0].p99ms[i]),
			fmt.Sprintf("%.0f", curves[1].tp[i]),
			fmt.Sprintf("%.1f", curves[1].p99ms[i]),
		)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", curves[0].tp[i]),
			fmt.Sprintf("%.3f", curves[0].p99ms[i]),
			fmt.Sprintf("%.2f", curves[1].tp[i]),
			fmt.Sprintf("%.3f", curves[1].p99ms[i]),
		})
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	last := len(counts) - 1
	satTP := curves[1].tp[last] / curves[1].tp[0]
	fmt.Printf("\nqd=32: %d threads sustain %.1fx the 1-thread throughput (saturation, not linear scaling)\n",
		counts[last], satTP)
	// Compare the depths at a mid-sweep thread count (16 if present).
	mid := last / 2
	for i, n := range counts {
		if n == 16 {
			mid = i
		}
	}
	fmt.Printf("qd=32 vs qd=1 at %d threads: %.2fx throughput, %.2fx p99\n\n",
		counts[mid], curves[1].tp[mid]/curves[0].tp[mid], curves[1].p99ms[mid]/curves[0].p99ms[mid])
	chart := &report.Chart{
		Title:  "ops/sec vs threads (1 = qd1, 3 = qd32, log y)",
		XLabel: "threads 1..64",
		X:      xs,
		LogY:   true,
		Series: []report.ChartSeries{
			{Name: "qd=1", Y: curves[0].tp, Marker: '1'},
			{Name: "qd=32", Y: curves[1].tp, Marker: '3'},
		},
	}
	if _, err := chart.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return writeCSV(proto, "contention.csv",
		[]string{"threads", "qd1_ops", "qd1_p99_ms", "qd32_ops", "qd32_p99_ms"}, rows)
}

// figureFairness is the requester-identity figure: who actually got
// serviced, and at what tail cost. A 34-thread mixed-personality
// workload (four 8-reader classes pinned to disk stripes plus two
// paced log appenders feeding the write-back daemon) runs under cfq,
// ncq, and elevator; for each scheduler the figure reports throughput,
// the Jain fairness index over the 32 readers' op counts, the
// per-thread spread, and worst- vs best-thread p99 — the distribution
// the aggregate mean erases.
func figureFairness(proto Protocol) error {
	fmt.Println("=== Fairness figure: cfq vs ncq vs elevator, 32 readers + 2 writers ===")
	const (
		regions = 4
		perReg  = 8
		readers = regions * perReg
	)
	type schedResult struct {
		name string
		res  *fsbench.Result
		jain float64
	}
	scheds := []string{"cfq", "ncq", "elevator"}
	results := make([]schedResult, 0, len(scheds))
	for _, sched := range scheds {
		// Scaled testbed: data on half the disk so the stripes cost
		// real seeks, readahead off so the queue holds exactly the
		// threads' demand reads (prefetch would smear attribution).
		stack := proto.stack(fsbench.StackConfig{
			FS: "ext2", Device: "hdd", DiskBytes: 512 << 20,
			RAMBytes: 64 << 20, OSReserveBytes: 13 << 20,
			CachePolicy: "lru", Readahead: "none",
			Scheduler: sched,
		})
		exp := &fsbench.Experiment{
			Name:          "fairness-" + sched,
			Stack:         stack,
			Workload:      fsbench.MixedRegions(regions, perReg, 2, 64<<20, 2<<10),
			Runs:          proto.Runs,
			Duration:      proto.Duration,
			MeasureWindow: proto.Window,
			ColdCache:     true,
			Seed:          proto.Seed,
			Parallelism:   proto.Parallelism,
			Kinds:         []fsbench.OpKind{workload.OpReadRand},
			Recorder:      proto.Recorder,
		}
		fmt.Printf("-- %s --\n", sched)
		exp.Progress = func(ev fsbench.ProgressEvent) {
			if ev.Done == ev.Total {
				fmt.Fprintf(os.Stderr, "  %s done, %d/%d runs\n", exp.Name, ev.Done, ev.Total)
			}
		}
		res, err := exp.Run()
		if err != nil {
			return err
		}
		results = append(results, schedResult{
			name: sched,
			res:  res,
			jain: fsbench.JainIndexCounts(res.PerOwner.OpsPadded(readers)[:readers]),
		})
	}

	t := &report.Table{
		Headers: []string{"sched", "ops/s", "jain(readers)", "thread ops min..max", "p99 worst ms", "p99 best ms"},
	}
	var rows [][]string
	for _, sr := range results {
		ops := sr.res.PerOwner.OpsPadded(readers)[:readers]
		sp := sr.res.PerOwner.Spread(readers)
		t.AddRow(
			sr.name,
			fmt.Sprintf("%.0f", sr.res.Throughput.Mean),
			fmt.Sprintf("%.3f", sr.jain),
			fmt.Sprintf("%d..%d", sp.MinOps, sp.MaxOps),
			fmt.Sprintf("%.1f", float64(sp.WorstP99)/1e6),
			fmt.Sprintf("%.1f", float64(sp.BestP99)/1e6),
		)
		for o, n := range ops {
			p99 := int64(0)
			if h := sr.res.PerOwner.Hist(o); h != nil {
				p99 = h.Percentile(99)
			}
			rows = append(rows, []string{
				sr.name,
				fmt.Sprintf("%d", o),
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.3f", float64(p99)/1e6),
			})
		}
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ncfq jain %.3f vs ncq %.3f: per-owner queues level service; ncq trades the edge stripes'\n",
		results[0].jain, results[1].jain)
	fmt.Printf("share for throughput (%.0f vs %.0f ops/s) — the cost the aggregate number hides\n\n",
		results[1].res.Throughput.Mean, results[0].res.Throughput.Mean)

	// Per-thread op counts, one series per scheduler: the starvation
	// pattern (middle stripes fat, edges thin) is visible directly.
	xs := make([]float64, readers)
	series := make([]report.ChartSeries, len(results))
	for i := range xs {
		xs[i] = float64(i)
	}
	markers := []byte{'c', 'n', 'e'}
	for i, sr := range results {
		ys := make([]float64, readers)
		for o, n := range sr.res.PerOwner.OpsPadded(readers)[:readers] {
			ys[o] = float64(n)
		}
		series[i] = report.ChartSeries{Name: sr.name, Y: ys, Marker: markers[i]}
	}
	chart := &report.Chart{
		Title:  "ops per reader thread (c = cfq, n = ncq, e = elevator)",
		XLabel: fmt.Sprintf("thread 0..%d (8 per disk stripe, low to high LBA)", readers-1),
		X:      xs,
		Series: series,
	}
	if _, err := chart.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return writeCSV(proto, "fairness.csv",
		[]string{"sched", "thread", "ops", "p99_ms"}, rows)
}

// figureQDSweep is the IO500-flavored queue-depth sweep on the
// multi-queue device model: 16-thread scattered 2 KB reads at
// QueueDepth 1/8/32 on the single-service disk and on NVMe at 1/4/8
// channels. On the HDD a deeper window buys only reordering (a few
// tens of percent); on NVMe reordering buys nothing (no seeks) but
// channel count scales throughput near-linearly — queue-depth sweeps
// on modern SSDs measure device-level concurrency, not scheduling,
// which is exactly the dimension a one-request-at-a-time device model
// erases.
func figureQDSweep(proto Protocol) error {
	fmt.Println("=== QD sweep figure: HDD vs NVMe across QueueDepth × channels ===")
	depths := []int{1, 8, 32}
	if proto.Tiny {
		depths = []int{1, 8}
	}
	devices := []struct {
		label    string
		device   string
		channels int
		marker   byte
	}{
		{"hdd", "hdd", 0, 'h'},
		{"nvme-1ch", "nvme", 1, '1'},
		{"nvme-4ch", "nvme", 4, '4'},
		{"nvme-8ch", "nvme", 8, '8'},
	}
	type curve struct {
		label string
		tp    []float64
	}
	var curves []curve
	var rows [][]string
	for _, d := range devices {
		c := curve{label: d.label}
		for _, qd := range depths {
			stack := proto.stack(fsbench.StackConfig{
				FS: "ext2", Device: d.device, NVMeChannels: d.channels,
				DiskBytes: 8 << 30, RAMBytes: 64 << 20, OSReserveBytes: 13 << 20,
				OSReserveJitter: 1 << 20, CachePolicy: "lru",
				Scheduler: "ncq", QueueDepth: qd,
			})
			runs, dur, win := proto.Runs, proto.Duration, proto.Window
			if d.device == "nvme" && !proto.Tiny {
				// The NVMe device is ~100x faster than the disk, so the
				// same virtual duration would simulate ~100x the
				// operations; shorter windows keep the figure's wall
				// time sane, and throughput is a rate either way.
				if runs > 3 {
					runs = 3
				}
				dur, win = 5*fsbench.Second, 2*fsbench.Second
			}
			exp := &fsbench.Experiment{
				Name:  fmt.Sprintf("qdsweep-%s-qd%d", d.label, qd),
				Stack: stack,
				// Scattered disk-bound reads: 1 GB file ≫ the ~51 MB
				// cache, 16 threads ≥ the widest channel count.
				Workload:      fsbench.RandomRead(1<<30, 2<<10, 16),
				Runs:          runs,
				Duration:      dur,
				MeasureWindow: win,
				ColdCache:     true,
				Seed:          proto.Seed,
				Parallelism:   proto.Parallelism,
				Kinds:         []fsbench.OpKind{workload.OpReadRand},
				Recorder:      proto.Recorder,
			}
			res, err := exp.Run()
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "  %s done (%.0f ops/s)\n", exp.Name, res.Throughput.Mean)
			c.tp = append(c.tp, res.Throughput.Mean)
			rows = append(rows, []string{
				d.label,
				fmt.Sprintf("%d", qd),
				fmt.Sprintf("%.2f", res.Throughput.Mean),
				fmt.Sprintf("%.4f", res.Throughput.RSD),
			})
		}
		curves = append(curves, c)
	}

	t := &report.Table{
		Headers: []string{"queue depth", "hdd ops/s", "nvme-1ch ops/s", "nvme-4ch ops/s", "nvme-8ch ops/s"},
	}
	for i, qd := range depths {
		t.AddRow(
			fmt.Sprintf("%d", qd),
			fmt.Sprintf("%.0f", curves[0].tp[i]),
			fmt.Sprintf("%.0f", curves[1].tp[i]),
			fmt.Sprintf("%.0f", curves[2].tp[i]),
			fmt.Sprintf("%.0f", curves[3].tp[i]),
		)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	last := len(depths) - 1
	fmt.Printf("\nhdd qd%d/qd1: %.2fx — reordering is all a deeper window buys a single-service disk\n",
		depths[last], curves[0].tp[last]/curves[0].tp[0])
	fmt.Printf("nvme qd%d/qd1 at 4 channels: %.2fx — no seeks, so the window buys ~nothing\n",
		depths[last], curves[2].tp[last]/curves[2].tp[0])
	fmt.Printf("nvme 8ch/1ch at qd%d: %.2fx — device-level concurrency is the axis that scales\n\n",
		depths[last], curves[3].tp[last]/curves[1].tp[last])

	xs := make([]float64, len(depths))
	for i, qd := range depths {
		xs[i] = float64(qd)
	}
	series := make([]report.ChartSeries, len(curves))
	for i, c := range curves {
		series[i] = report.ChartSeries{Name: c.label, Y: c.tp, Marker: devices[i].marker}
	}
	chart := &report.Chart{
		Title:  "ops/sec vs queue depth (h = hdd, 1/4/8 = nvme channels, log y)",
		XLabel: "queue depth 1..32",
		X:      xs,
		LogY:   true,
		Series: series,
	}
	if _, err := chart.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return writeCSV(proto, "qdsweep.csv",
		[]string{"device", "queue_depth", "ops_per_sec", "rsd"}, rows)
}

// figureOpenLoop is the harness-structure figure: the same offered
// load presented by a closed loop (think-paced threads, arrivals
// gated by completions) and an open loop (Poisson generator feeding a
// worker pool, arrivals independent of completions), swept across the
// device's saturation knee. Below capacity the two throughputs match
// and latencies agree; past the knee the closed loop self-throttles —
// latency stays flat-ish at queue-depth scale — while the open loop's
// backlog grows and arrival-to-completion p99 explodes. Same device,
// same file, same ops: only the harness structure differs, which is
// the paper's warning in one picture.
func figureOpenLoop(proto Protocol) error {
	fmt.Println("=== Open-loop figure: closed vs open arrivals across offered load ===")
	const workers = 16
	stack := proto.stack(fsbench.StackConfig{
		FS: "ext2", Device: "hdd", DiskBytes: 8 << 30,
		RAMBytes: 64 << 20, OSReserveBytes: 13 << 20,
		CachePolicy: "lru", Scheduler: "ncq",
	})
	// Disk-bound 2 KB random reads saturate the disk at ~10^2 ops/s,
	// so fixed short durations keep every point cheap while still
	// completing thousands of ops; more runs would only tighten CIs
	// the figure does not plot.
	runs, dur, win := proto.Runs, 40*fsbench.Second, 20*fsbench.Second
	if runs > 3 {
		runs = 3
	}
	if proto.Tiny {
		dur, win = proto.Duration, proto.Window
	}
	mkExp := func(name string, w *fsbench.Workload) *fsbench.Experiment {
		return &fsbench.Experiment{
			Name:          name,
			Stack:         stack,
			Workload:      w,
			Runs:          runs,
			Duration:      dur,
			MeasureWindow: win,
			ColdCache:     true,
			Seed:          proto.Seed,
			Parallelism:   proto.Parallelism,
			Kinds:         []fsbench.OpKind{workload.OpReadRand},
			Recorder:      proto.Recorder,
		}
	}

	// Stage 1: the device's closed-loop saturation throughput — the
	// capacity the offered-load axis is normalized to.
	capRes, err := mkExp("openloop-capacity",
		fsbench.RandomRead(1<<30, 2<<10, workers)).Run()
	if err != nil {
		return err
	}
	capacity := capRes.Throughput.Mean
	fmt.Printf("closed-loop saturation: %.0f ops/s (%d unthrottled threads)\n\n", capacity, workers)

	// Stage 2: sweep offered load across the knee, closed and open.
	fracs := []float64{0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.3}
	if proto.Tiny {
		fracs = []float64{0.5, 1.3}
	}
	type point struct {
		frac, rate                  float64
		closedTP, closedP99ms       float64
		openTP, openP99ms           float64
		offered, completed, backlog int64
	}
	var pts []point
	for _, frac := range fracs {
		rateOffered := frac * capacity
		// Closed loop at the same intended rate: think time paces each
		// of the `workers` threads to rate/workers ops/s. Under load
		// the loop silently delivers less than intended — exactly the
		// self-throttling under test.
		closed := fsbench.RandomRead(1<<30, 2<<10, workers)
		closed.Name = "closedpaced"
		think := fsbench.Time(float64(workers) / rateOffered * float64(fsbench.Second))
		closed.Threads[0].Flowops = append(closed.Threads[0].Flowops,
			fsbench.Flowop{Kind: workload.OpThink, Think: think})
		open := fsbench.OpenLoopRead(1<<30, 2<<10, workers, rateOffered)
		exps := []*fsbench.Experiment{
			mkExp(fmt.Sprintf("closed-%.2fx", frac), closed),
			mkExp(fmt.Sprintf("open-%.2fx", frac), open),
		}
		runner := fsbench.Runner{Parallelism: proto.Parallelism, Progress: expProgress(exps)}
		results, err := runner.RunExperiments(exps)
		if err != nil {
			return err
		}
		cRes, oRes := results[0], results[1]
		pts = append(pts, point{
			frac: frac, rate: rateOffered,
			closedTP:    cRes.Throughput.Mean,
			closedP99ms: float64(cRes.Hist.Percentile(99)) / 1e6,
			openTP:      oRes.Throughput.Mean,
			openP99ms:   float64(oRes.Hist.Percentile(99)) / 1e6,
			offered:     oRes.Load.Offered,
			completed:   oRes.Load.Completed,
			backlog:     oRes.Load.BacklogPeak,
		})
	}

	t := &report.Table{
		Headers: []string{"offered", "rate/s", "closed ops/s", "closed p99 ms",
			"open ops/s", "open p99 ms", "open done %", "backlog peak"},
	}
	var rows [][]string
	xs := make([]float64, len(pts))
	closedP99s := make([]float64, len(pts))
	openP99s := make([]float64, len(pts))
	for i, p := range pts {
		doneFrac := 100 * float64(p.completed) / float64(p.offered)
		t.AddRow(
			fmt.Sprintf("%.2fx", p.frac),
			fmt.Sprintf("%.0f", p.rate),
			fmt.Sprintf("%.0f", p.closedTP),
			fmt.Sprintf("%.1f", p.closedP99ms),
			fmt.Sprintf("%.0f", p.openTP),
			fmt.Sprintf("%.1f", p.openP99ms),
			fmt.Sprintf("%.1f", doneFrac),
			fmt.Sprintf("%d", p.backlog),
		)
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.frac),
			fmt.Sprintf("%.2f", p.rate),
			fmt.Sprintf("%.2f", p.closedTP),
			fmt.Sprintf("%.3f", p.closedP99ms),
			fmt.Sprintf("%.2f", p.openTP),
			fmt.Sprintf("%.3f", p.openP99ms),
			fmt.Sprintf("%d", p.offered),
			fmt.Sprintf("%d", p.completed),
			fmt.Sprintf("%d", p.backlog),
		})
		xs[i] = p.frac
		closedP99s[i] = p.closedP99ms
		openP99s[i] = p.openP99ms
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	first, last := pts[0], pts[len(pts)-1]
	fmt.Printf("\nbelow the knee (%.2fx): closed %.0f vs open %.0f ops/s — matched throughput, comparable tails\n",
		first.frac, first.closedTP, first.openTP)
	fmt.Printf("past the knee (%.2fx): closed p99 %.0f ms (self-throttled) vs open p99 %.0f ms (%.1fx) —\n",
		last.frac, last.closedP99ms, last.openP99ms, last.openP99ms/last.closedP99ms)
	fmt.Printf("same device, same ops; only the harness structure differs\n\n")
	chart := &report.Chart{
		Title:  "p99 latency (ms, log) vs offered load (c = closed, o = open)",
		XLabel: "offered load, fraction of closed-loop saturation",
		X:      xs,
		LogY:   true,
		Series: []report.ChartSeries{
			{Name: "closed", Y: closedP99s, Marker: 'c'},
			{Name: "open", Y: openP99s, Marker: 'o'},
		},
	}
	if _, err := chart.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return writeCSV(proto, "openloop.csv",
		[]string{"offered_frac", "rate_ops", "closed_ops", "closed_p99_ms",
			"open_ops", "open_p99_ms", "open_offered", "open_completed", "open_backlog_peak"},
		rows)
}

// figureTraceReplay records one open-loop workload trace and replays
// the same capture under every discipline: timed (faithful to the
// recorded arrivals), afap (closed loop, as fast as possible), and
// scaled ×{1..4} time compression. The point is the paper's replay
// complaint made concrete: compressing a trace's timing drives the
// stack past its knee — completion ratio falls below 1 and p99 blows
// up — while an afap replay of the very same operations reports no
// overload at all, because a closed loop cannot leave work unoffered.
func figureTraceReplay(proto Protocol) error {
	fmt.Println("=== Trace-replay figure: one capture, three replay disciplines ===")
	const streams = 8
	stack := proto.stack(fsbench.StackConfig{
		FS: "ext2", Device: "hdd", DiskBytes: 8 << 30,
		RAMBytes: 64 << 20, OSReserveBytes: 13 << 20,
		CachePolicy: "lru", Scheduler: "ncq",
	})
	runs, dur := proto.Runs, 40*fsbench.Second
	if runs > 3 {
		runs = 3
	}
	if proto.Tiny {
		dur = proto.Duration
	}
	mkExp := func(name string) *fsbench.Experiment {
		return &fsbench.Experiment{
			Name:          name,
			Stack:         stack,
			Runs:          runs,
			MeasureWindow: proto.Window,
			ColdCache:     true,
			Seed:          proto.Seed,
			Parallelism:   proto.Parallelism,
			Recorder:      proto.Recorder,
		}
	}

	// Stage 1: closed-loop saturation throughput — the capacity the
	// recorded rate is anchored to, so scaled replay crosses the knee
	// at a known compression factor.
	capExp := mkExp("tracereplay-capacity")
	capExp.Workload = fsbench.RandomRead(1<<30, 2<<10, streams)
	capExp.Duration = dur
	capExp.Kinds = []fsbench.OpKind{workload.OpReadRand}
	capRes, err := capExp.Run()
	if err != nil {
		return err
	}
	capacity := capRes.Throughput.Mean
	fmt.Printf("closed-loop saturation: %.0f ops/s (%d unthrottled streams)\n", capacity, streams)

	// Stage 2: capture at 0.45x capacity — comfortably below the knee,
	// so x2 compression approaches it and x3-x4 land past it.
	rate := 0.45 * capacity
	rec := fsbench.OpenLoopRead(1<<30, 2<<10, streams, rate)
	tr, err := fsbench.RecordWorkload(rec, stack, dur, proto.Seed)
	if err != nil {
		return err
	}
	f, err := os.Create(outPath(proto, "tracereplay.fsbt"))
	if err != nil {
		return err
	}
	if err := tr.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	src := fsbench.TraceMemorySource(tr)
	info := &fsbench.TraceReplay{Tenants: []fsbench.TraceSource{src}}
	fmt.Printf("captured %d records over %d streams at %.0f ops/s (digest %.12s)\n\n",
		info.Records(), info.Workers(), rate, info.Digest())

	// Stage 3: replay the one capture under each discipline.
	type leg struct {
		name  string
		mode  fsbench.ReplayMode
		scale float64
	}
	legs := []leg{
		{"timed", fsbench.ReplayTimed, 1},
		{"afap", fsbench.ReplayAFAP, 1},
		{"scaled-x2", fsbench.ReplayScaled, 2},
		{"scaled-x3", fsbench.ReplayScaled, 3},
		{"scaled-x4", fsbench.ReplayScaled, 4},
	}
	t := &report.Table{
		Headers: []string{"discipline", "ops/s", "p99 ms", "done %", "backlog peak"},
	}
	var rows [][]string
	var xs, p99s []float64
	for _, l := range legs {
		exp := mkExp("tracereplay-" + l.name)
		exp.Trace = &fsbench.TraceReplay{
			Tenants: []fsbench.TraceSource{src},
			Mode:    l.mode,
			Scale:   l.scale,
			Name:    l.name,
		}
		res, err := exp.Run()
		if err != nil {
			return err
		}
		p99ms := float64(res.Hist.Percentile(99)) / 1e6
		// A closed loop never touches the load gauge: its completion
		// ratio is 1 by construction, which is exactly the number that
		// hides the knee.
		doneCol, doneCSV := "(closed)", "1.000"
		if res.Load.Offered > 0 {
			frac := res.Load.CompletionRatio()
			doneCol = fmt.Sprintf("%.1f", frac*100)
			doneCSV = fmt.Sprintf("%.3f", frac)
		}
		t.AddRow(l.name,
			fmt.Sprintf("%.0f", res.Throughput.Mean),
			fmt.Sprintf("%.1f", p99ms),
			doneCol,
			fmt.Sprintf("%d", res.Load.BacklogPeak))
		rows = append(rows, []string{
			l.name, l.mode.String(), fmt.Sprintf("%g", l.scale),
			fmt.Sprintf("%.2f", res.Throughput.Mean),
			fmt.Sprintf("%.3f", p99ms),
			fmt.Sprintf("%d", res.Load.Offered),
			fmt.Sprintf("%d", res.Load.Completed),
			doneCSV,
			fmt.Sprintf("%d", res.Load.BacklogPeak),
		})
		if l.mode != fsbench.ReplayAFAP {
			xs = append(xs, l.scale)
			p99s = append(p99s, p99ms)
		}
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nthe same operations, three timing stories: timed reproduces the capture,\n")
	fmt.Printf("scaled compression crosses the knee (done %% < 100, p99 blows up), and afap\n")
	fmt.Printf("cannot see overload at all — a closed loop leaves no load unoffered\n\n")
	chart := &report.Chart{
		Title:  "replay p99 latency (ms, log) vs time compression",
		XLabel: "trace time compression factor (timed = x1)",
		X:      xs,
		LogY:   true,
		Series: []report.ChartSeries{{Name: "scaled replay", Y: p99s, Marker: 's'}},
	}
	if _, err := chart.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return writeCSV(proto, "tracereplay.csv",
		[]string{"discipline", "mode", "scale", "ops_s", "p99_ms",
			"offered", "completed", "done_frac", "backlog_peak"},
		rows)
}

// table1 renders the survey table.
func table1(proto Protocol) error {
	fmt.Println("=== Table 1: Benchmarks Summary ===")
	if err := survey.Render(os.Stdout, survey.Table1()); err != nil {
		return err
	}
	fmt.Println()
	f, err := os.Create(outPath(proto, "table1.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return survey.RenderCSV(f, survey.Table1())
}
