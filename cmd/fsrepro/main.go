// Command fsrepro regenerates every table and figure from the paper's
// evaluation on the simulated stack. Text renditions go to stdout;
// raw data series go to CSV files under -out for real plotting.
//
// Usage:
//
//	fsrepro -all            # quick protocol (60 s runs, 5 repeats)
//	fsrepro -all -full      # the paper's protocol (20 min runs, 10 repeats)
//	fsrepro -fig 1 -fig 3   # individual figures
//	fsrepro -table 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	wh "repro/internal/warehouse"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var figs multiFlag
	flag.Var(&figs, "fig", "figure to regenerate: 1, 1zoom, 2, 3, 4, contention, fairness, qdsweep, openloop, tracereplay (repeatable)")
	var (
		table     = flag.String("table", "", "table to regenerate: 1")
		all       = flag.Bool("all", false, "regenerate everything")
		full      = flag.Bool("full", false, "use the paper's full protocol (20 min runs, 10 repeats)")
		out       = flag.String("out", "results", "directory for CSV data files")
		seed      = flag.Uint64("seed", 1, "base seed")
		parallel  = flag.Int("parallel", 0, "concurrent runs, 0 = GOMAXPROCS (results are identical at any setting)")
		shards    = flag.Int("shards", 1, "event-loop shards per run; >1 models N replica stacks (see DESIGN.md §9)")
		shardMode = flag.String("shard-mode", "", "shard partitioning with -shards: empty = replica, shared-device = one contended device behind all shards (see DESIGN.md §9)")
		warehouse = flag.String("warehouse", "", "archive every figure's measured runs to this results-warehouse directory")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	proto := quickProtocol()
	if *full {
		proto = paperProtocol()
	}
	proto.Seed = *seed
	proto.OutDir = *out
	proto.Parallelism = *parallel
	proto.Shards = *shards
	proto.ShardMode = *shardMode
	if *warehouse != "" {
		st, err := openWarehouse(*warehouse)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		proto.Recorder = st
	}

	if *all {
		figs = multiFlag{"1", "1zoom", "2", "3", "4", "contention", "fairness", "qdsweep", "openloop", "tracereplay"}
		*table = "1"
	}
	if len(figs) == 0 && *table == "" {
		flag.Usage()
		os.Exit(2)
	}
	for _, f := range figs {
		var err error
		switch f {
		case "1":
			err = figure1(proto)
		case "1zoom":
			err = figure1zoom(proto)
		case "2":
			err = figure2(proto)
		case "3":
			err = figure3(proto)
		case "4":
			err = figure4(proto)
		case "contention":
			err = figureContention(proto)
		case "fairness":
			err = figureFairness(proto)
		case "qdsweep":
			err = figureQDSweep(proto)
		case "openloop":
			err = figureOpenLoop(proto)
		case "tracereplay":
			err = figureTraceReplay(proto)
		default:
			err = fmt.Errorf("unknown figure %q", f)
		}
		if err != nil {
			fatal(fmt.Errorf("figure %s: %w", f, err))
		}
	}
	if *table == "1" {
		if err := table1(proto); err != nil {
			fatal(fmt.Errorf("table 1: %w", err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fsrepro: %v\n", err)
	os.Exit(1)
}

// openWarehouse opens (creating if needed) the results archive and
// stamps appended records with the working tree's git revision.
func openWarehouse(dir string) (*wh.Store, error) {
	st, err := wh.Open(dir)
	if err != nil {
		return nil, err
	}
	st.GitRev = wh.GitRev()
	return st, nil
}

func outPath(proto Protocol, name string) string {
	return filepath.Join(proto.OutDir, name)
}

func writeCSV(proto Protocol, name string, headers []string, rows [][]string) error {
	f, err := os.Create(outPath(proto, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return csvTo(f, headers, rows)
}
