package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	fsbench "repro"
)

var update = flag.Bool("update", false, "rewrite the golden CSV files")

// tinyProtocol is the fixed smoke-scale protocol behind the goldens:
// seconds of virtual time, two runs, seed 1. Everything in it is
// pinned — the goldens are byte-exact, so any change here (or to the
// simulator) shows up as a diff, which is the point.
func tinyProtocol(t *testing.T) Protocol {
	return Protocol{
		Runs:     2,
		Duration: 2 * fsbench.Second,
		Window:   1 * fsbench.Second,
		Seed:     1,
		OutDir:   t.TempDir(),
		Tiny:     true,
	}
}

// silence routes the figures' stdout/stderr narration to /dev/null
// for the duration of the test; only the CSV files matter here.
func silence(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	savedOut, savedErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = devnull, devnull
	t.Cleanup(func() {
		os.Stdout, os.Stderr = savedOut, savedErr
		devnull.Close()
	})
}

// TestFigureCSVGoldens regenerates the derived figures' CSV outputs at
// a tiny fixed-seed configuration and compares them byte-for-byte
// against committed goldens. Run with -update after an intentional
// simulator or figure change:
//
//	go test ./cmd/fsrepro -run TestFigureCSVGoldens -update
func TestFigureCSVGoldens(t *testing.T) {
	figures := []struct {
		name string
		run  func(Protocol) error
		csv  string
	}{
		{"contention", figureContention, "contention.csv"},
		{"qdsweep", figureQDSweep, "qdsweep.csv"},
		{"fairness", figureFairness, "fairness.csv"},
		{"openloop", figureOpenLoop, "openloop.csv"},
		{"tracereplay", figureTraceReplay, "tracereplay.csv"},
	}
	for _, fig := range figures {
		t.Run(fig.name, func(t *testing.T) {
			proto := tinyProtocol(t)
			silence(t)
			if err := fig.run(proto); err != nil {
				t.Fatalf("figure %s: %v", fig.name, err)
			}
			got, err := os.ReadFile(filepath.Join(proto.OutDir, fig.csv))
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", fig.csv+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s differs from %s\n--- got ---\n%s\n--- want ---\n%s",
					fig.csv, golden, got, want)
			}
		})
	}
}
