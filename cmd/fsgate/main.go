// Command fsgate is the CI regression gate: it replays a fixed set of
// benchmark legs (mirroring BenchmarkContention's configurations) at
// a pinned candidate seed, archives the runs to a results warehouse,
// and statistically compares each leg against a committed baseline
// archive. The build fails — exit 1 — when any metric regresses at
// the gate's family-wise alpha, so "the numbers looked fine" becomes
// a significance test, not a glance at a chart.
//
// Usage:
//
//	fsgate -baseline ci/baseline.jsonl                # gate (CI mode)
//	fsgate -baseline ci/baseline.jsonl -update        # refresh the baseline
//	fsgate -baseline ci/baseline.jsonl -record dir    # keep the candidate archive
//
// The baseline is recorded at seed 101, candidates at seed 202, both
// with 8 runs per leg: at alpha 0.01 over the gate's metric family,
// Holm's strictest threshold is alpha/m, and the Mann-Whitney test's
// smallest reachable p-value only clears it from n=8 per side.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	fsbench "repro"
	"repro/internal/warehouse"
	"repro/internal/warehouse/gate"
	"repro/internal/workload"
)

const (
	baselineSeed  = 101
	candidateSeed = 202
	gateRuns      = 8
)

// leg is one replayed benchmark configuration. A leg with modePinned
// set carries its own shard topology (count and mode) as part of WHAT
// it measures: the -shards execution knob does not apply to it.
type leg struct {
	name     string
	stack    fsbench.StackConfig
	workload *fsbench.Workload
	duration fsbench.Time
	window   fsbench.Time
	// modePinned marks shard count/mode as config, not execution knob.
	modePinned bool
}

// legs mirrors BenchmarkContention: 16-thread disk-bound random reads
// at queue depth 1 vs 32 under NCQ on the disk and the 4-channel NVMe
// device, plus the open-loop Poisson leg past the disk's saturation
// and the shared-device sharded leg (the same hdd-qd32 contention
// split across two thread shards and a device shard — its fingerprint
// includes the topology, so it gates against its own baseline rows).
// Unlike the benchmarks, the legs keep the OS-reserve jitter: the
// gate needs honest run-to-run variance, or seed luck masquerades as
// significance.
func legs() []leg {
	stack := func(dev string, depth int) fsbench.StackConfig {
		s := fsbench.StackConfig{
			FS: "ext2", Device: "hdd", DiskBytes: 8 << 30,
			RAMBytes: 64 << 20, OSReserveBytes: 13 << 20, OSReserveJitter: 1 << 20,
			CachePolicy: "lru", Scheduler: "ncq", QueueDepth: depth,
		}
		if dev == "nvme" {
			s.Device = "nvme"
			s.NVMeChannels = 4
		}
		return s
	}
	shared := stack("hdd", 32)
	shared.Shards = 2
	shared.ShardMode = fsbench.ShardModeSharedDevice
	read := func() *fsbench.Workload { return fsbench.RandomRead(1<<30, 2<<10, 16) }
	return []leg{
		{"gate-hdd-qd1", stack("hdd", 1), read(), 15 * fsbench.Second, 5 * fsbench.Second, false},
		{"gate-hdd-qd32", stack("hdd", 32), read(), 15 * fsbench.Second, 5 * fsbench.Second, false},
		{"gate-nvme4-qd1", stack("nvme", 1), read(), 5 * fsbench.Second, 2 * fsbench.Second, false},
		{"gate-nvme4-qd32", stack("nvme", 32), read(), 5 * fsbench.Second, 2 * fsbench.Second, false},
		{"gate-openloop", stack("hdd", 32), fsbench.OpenLoopRead(1<<30, 2<<10, 16, 180),
			5 * fsbench.Second, 2 * fsbench.Second, false},
		{"gate-shared-hdd-qd32", shared, read(), 15 * fsbench.Second, 5 * fsbench.Second, true},
	}
}

func main() {
	var (
		baseline = flag.String("baseline", "ci/baseline.jsonl", "committed baseline archive to gate against")
		record   = flag.String("record", "", "directory to archive candidate runs in (default: a temp dir)")
		alpha    = flag.Float64("alpha", 0.01, "family-wise significance level per leg")
		update   = flag.Bool("update", false, "re-record the baseline instead of gating")
		parallel = flag.Int("parallel", 0, "concurrent runs, 0 = GOMAXPROCS (results are identical at any setting)")
		shards   = flag.Int("shards", 1, "event-loop shards per run; fingerprints ignore the setting, so sharded candidates still gate against the committed baseline (see DESIGN.md §9)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the replay to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *update {
		if err := recordBaseline(*baseline, *parallel, *shards); err != nil {
			fatal(err)
		}
		return
	}
	if err := runGate(*baseline, *record, *alpha, *parallel, *shards); err != nil {
		fatal(err)
	}
}

// replay runs every leg at the given base seed, archiving into dir,
// and returns the archived set.
func replay(dir string, seed uint64, parallel, shards int) (warehouse.Set, error) {
	st, err := warehouse.Open(dir)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	st.GitRev = warehouse.GitRev()
	for _, l := range legs() {
		if !l.modePinned {
			l.stack.Shards = shards
		}
		exp := &fsbench.Experiment{
			Name:          l.name,
			Stack:         l.stack,
			Workload:      l.workload,
			Runs:          gateRuns,
			Duration:      l.duration,
			MeasureWindow: l.window,
			ColdCache:     true,
			Seed:          seed,
			Parallelism:   parallel,
			Kinds:         []fsbench.OpKind{workload.OpReadRand},
			Recorder:      st,
		}
		res, err := exp.Run()
		if err != nil {
			return nil, fmt.Errorf("leg %s: %w", l.name, err)
		}
		fmt.Fprintf(os.Stderr, "  %s: %d runs, %.0f ops/s mean [%s]\n",
			l.name, gateRuns, res.Throughput.Mean, res.Flags)
	}
	return st.Load()
}

// recordBaseline replays the legs at the baseline seed and replaces
// the baseline archive file.
func recordBaseline(path string, parallel, shards int) error {
	tmp, err := os.MkdirTemp("", "fsgate-baseline-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	fmt.Fprintf(os.Stderr, "recording baseline (seed %d, %d runs per leg)\n", baselineSeed, gateRuns)
	if _, err := replay(tmp, baselineSeed, parallel, shards); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(tmp, "results.jsonl"))
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("baseline written to %s\n", path)
	return nil
}

// runGate replays the candidate legs and gates each against the
// baseline archive, exiting non-zero on any regression.
func runGate(baselinePath, recordDir string, alpha float64, parallel, shards int) error {
	base, err := warehouse.LoadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("loading baseline (run with -update to create it): %w", err)
	}
	if recordDir == "" {
		tmp, err := os.MkdirTemp("", "fsgate-candidate-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		recordDir = tmp
	}
	fmt.Fprintf(os.Stderr, "replaying candidate legs (seed %d, %d runs per leg)\n", candidateSeed, gateRuns)
	cand, err := replay(recordDir, candidateSeed, parallel, shards)
	if err != nil {
		return err
	}

	failed := false
	for _, l := range legs() {
		b := base.Filter(warehouse.Filter{Name: l.name})
		c := cand.Filter(warehouse.Filter{Name: l.name})
		if len(b) == 0 {
			fmt.Printf("== %s: MISSING from baseline — refresh it with -update\n\n", l.name)
			failed = true
			continue
		}
		rep := gate.Compare(b, c, gate.Config{Alpha: alpha})
		fmt.Printf("== %s\n%s", l.name, rep)
		if !rep.FingerprintMatch {
			// The candidate measured a different configuration than the
			// baseline: the comparison is between different things, which
			// is a stale baseline, not a verdict.
			fmt.Printf("   CONFIG DRIFT: baseline fingerprint differs — refresh it with -update\n")
			failed = true
		}
		if regs := rep.Regressions(); len(regs) > 0 {
			for _, m := range regs {
				fmt.Printf("   REGRESSED: %s (%+.1f%%)\n", m.Metric, 100*m.Effect)
			}
			failed = true
		}
		fmt.Println()
	}
	if failed {
		return fmt.Errorf("regression gate failed at alpha %g", alpha)
	}
	fmt.Printf("regression gate passed: no significant regressions at alpha %g\n", alpha)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fsgate: %v\n", err)
	os.Exit(1)
}
