// Fairness: requester identity made visible. A 34-thread
// mixed-personality workload — four classes of 8 random readers, each
// pinned to its own disk stripe, plus two paced log appenders feeding
// the write-back daemon — runs under the seek-greedy NCQ scheduler
// and under CFQ's per-owner time-sliced queues.
//
// Every I/O in the stack carries its requester's identity, so the
// harness can report what the aggregate ops/s number erases: under
// NCQ the middle stripes capture the head and the edge stripes starve
// until the 2 s anti-starvation deadline bails them out (per-thread
// op counts split into fat and thin tiers, worst-thread p99 ~ the
// deadline); under CFQ every thread gets the same service (Jain index
// ~1.0) at a lower aggregate throughput. Neither number is "the"
// result — the pair is.
package main

import (
	"fmt"
	"log"
	"os"

	fsbench "repro"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	const (
		regions = 4
		perReg  = 8
		readers = regions * perReg
	)
	type row struct {
		jain     float64
		tp       float64
		min, max int64
		p99ms    float64
	}
	out := map[string]row{}
	scheds := []string{"cfq", "ncq"}
	for _, sched := range scheds {
		// Scaled testbed: ~51 MB cache, data on half a 512 MB disk so
		// the stripes cost real seeks; readahead off so the device
		// queue holds exactly the threads' demand reads.
		stack := fsbench.StackConfig{
			FS: "ext2", Device: "hdd", DiskBytes: 512 << 20,
			RAMBytes: 64 << 20, OSReserveBytes: 13 << 20,
			CachePolicy: "lru", Readahead: "none",
			Scheduler: sched,
		}
		exp := &fsbench.Experiment{
			Name:          "fairness-" + sched,
			Stack:         stack,
			Workload:      fsbench.MixedRegions(regions, perReg, 2, 64<<20, 2<<10),
			Runs:          1,
			Duration:      10 * fsbench.Second,
			MeasureWindow: 8 * fsbench.Second,
			ColdCache:     true,
			Seed:          7,
			Kinds:         []fsbench.OpKind{workload.OpReadRand},
		}
		res, err := exp.Run()
		if err != nil {
			log.Fatal(err)
		}
		ops := res.PerOwner.OpsPadded(readers)[:readers]
		sp := res.PerOwner.Spread(readers)
		out[sched] = row{
			jain: fsbench.JainIndexCounts(ops),
			tp:   res.Throughput.Mean,
			min:  sp.MinOps, max: sp.MaxOps,
			p99ms: float64(sp.WorstP99) / 1e6,
		}
	}

	t := &report.Table{
		Title:   "32 striped readers + 2 writers, 2 KB random reads (cold cache)",
		Headers: []string{"sched", "ops/s", "jain", "thread ops min..max", "worst-thread p99 ms"},
	}
	for _, sched := range scheds {
		r := out[sched]
		t.AddRow(sched,
			fmt.Sprintf("%.0f", r.tp),
			fmt.Sprintf("%.3f", r.jain),
			fmt.Sprintf("%d..%d", r.min, r.max),
			fmt.Sprintf("%.0f", r.p99ms),
		)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	cfq, ncq := out["cfq"], out["ncq"]
	fmt.Printf("\nfairness: cfq jain %.3f vs ncq %.3f — per-owner time slices level the stripes\n",
		cfq.jain, ncq.jain)
	fmt.Printf("the price: cfq sustains %.2fx ncq's aggregate throughput\n", cfq.tp/ncq.tp)
	fmt.Printf("the tail: ncq's worst thread p99 is ~%.1f s (anti-starvation-deadline territory); cfq's %.2f s\n",
		ncq.p99ms/1e3, cfq.p99ms/1e3)
}
