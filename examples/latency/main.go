// Latency: reproduce Figure 3 — the same random-read workload at
// three file sizes yields three completely different latency
// distributions: unimodal-fast (fits in memory), bimodal (half
// cached), unimodal-slow (disk). A mean summarizes none of them.
package main

import (
	"fmt"
	"log"
	"os"

	fsbench "repro"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	sizes := []struct {
		label string
		bytes int64
	}{
		{"(a) 64 MB file — fits in cache", 64 << 20},
		{"(b) 1024 MB file — twice the cache", 1024 << 20},
		{"(c) 25 GB file — far beyond cache", 25 << 30},
	}
	for _, sz := range sizes {
		stack := fsbench.PaperStack()
		exp := &fsbench.Experiment{
			Name:          sz.label,
			Stack:         stack,
			Workload:      fsbench.RandomRead(sz.bytes, 2<<10, 1),
			Runs:          1,
			Duration:      60 * fsbench.Second,
			MeasureWindow: 30 * fsbench.Second,
			Seed:          3,
			Kinds:         []fsbench.OpKind{workload.OpReadRand},
		}
		res, err := exp.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := report.Histogram(os.Stdout, sz.label, res.Hist); err != nil {
			log.Fatal(err)
		}
		mean := res.Hist.Mean()
		p50 := res.Hist.Percentile(50)
		fmt.Printf("  mean=%.0fns p50<=%dns modes=%v bimodal=%v\n",
			mean, p50, res.Hist.Modes(0.05), res.Flags.Bimodal)
		if res.Flags.Bimodal {
			fmt.Println("  ! the mean falls between the peaks and describes NO actual operation")
		}
	}
	fmt.Println("\npaper: \"the working set size impacts reported latency significantly,")
	fmt.Println("spanning over 3 orders of magnitude\" — compare the (a) and (c) peaks above.")
}
