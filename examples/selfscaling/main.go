// Selfscaling: the Chen & Patterson style self-scaling benchmark the
// paper cites as the way to "collect data for such graphs" — sweep
// each workload parameter around a base point, then let the cliff
// search localize the memory/disk boundary automatically.
package main

import (
	"fmt"
	"log"

	fsbench "repro"
	"repro/internal/selfscale"
)

func main() {
	stack := fsbench.PaperStack()
	cfg := selfscale.Config{
		Stack: stack, Runs: 1,
		Duration: 20 * fsbench.Second, Window: 10 * fsbench.Second, Seed: 5,
	}
	base := fsbench.SelfScaleDefaults(stack)
	fmt.Printf("base point: workingset=%dMB iosize=%dKB readfrac=%.1f seqfrac=%.1f threads=%d\n\n",
		base.UniqueBytes>>20, base.IOSize>>10, base.ReadFrac, base.SeqFrac, base.Threads)

	// Sweep each axis around the base point.
	axes := []struct {
		param  string
		values []float64
		format func(float64) string
	}{
		{"uniquebytes", []float64{64 << 20, 256 << 20, 410 << 20, 512 << 20, 1 << 30},
			func(v float64) string { return fmt.Sprintf("%dMB", int64(v)>>20) }},
		{"iosize", []float64{2 << 10, 8 << 10, 64 << 10},
			func(v float64) string { return fmt.Sprintf("%dKB", int64(v)>>10) }},
		{"readfrac", []float64{0, 0.5, 1},
			func(v float64) string { return fmt.Sprintf("%.1f", v) }},
		{"seqfrac", []float64{0, 0.5, 1},
			func(v float64) string { return fmt.Sprintf("%.1f", v) }},
		{"threads", []float64{1, 4, 8},
			func(v float64) string { return fmt.Sprintf("%d", int(v)) }},
	}
	for _, axis := range axes {
		pts, err := selfscale.SweepParam(cfg, base, axis.param, axis.values)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s:", axis.param)
		for _, p := range pts {
			fmt.Printf("  %s=%.0f", axis.format(p.X), p.Ops)
		}
		fmt.Println()
	}

	// And the automatic cliff localization.
	readOnly := fsbench.SelfScaleParams{IOSize: 2 << 10, ReadFrac: 1, SeqFrac: 0, Threads: 1}
	cliff, err := fsbench.CliffSearch(cfg, readOnly, 256<<20, 768<<20, 3, 2<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nautomatic cliff localization: %s\n", cliff)
	fmt.Printf("(the page cache on this run holds ~%d MB)\n", stack.CacheBytesMean()>>20)
}
