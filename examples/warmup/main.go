// Warmup: reproduce Figure 2 — three file systems random-reading the
// same 410 MB file from a cold cache. At the start they are all
// disk-bound; at the end all memory-bound; in between, "the results
// can show differences ranging anywhere from a few percentage points
// to nearly an order of magnitude" depending on when you look.
package main

import (
	"fmt"
	"log"
	"os"

	fsbench "repro"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	curves := map[string][]float64{}
	order := []string{"ext2", "ext3", "xfs"}
	for _, fsName := range order {
		stack := fsbench.PaperStack()
		stack.FS = fsName
		stack.OSReserveJitter = 0
		exp := &fsbench.Experiment{
			Name:           "warmup-" + fsName,
			Stack:          stack,
			Workload:       fsbench.RandomRead(410<<20, 2<<10, 1),
			Runs:           1,
			Duration:       1200 * fsbench.Second,
			ColdCache:      true,
			Seed:           7,
			SeriesInterval: 30 * fsbench.Second,
			Kinds:          []fsbench.OpKind{workload.OpReadRand},
		}
		res, err := exp.Run()
		if err != nil {
			log.Fatal(err)
		}
		curves[fsName] = res.PerRun[0].Series.Rates()
		fmt.Printf("%-5s non-stationary: %v\n", fsName, res.Flags.NonStationary)
	}

	n := len(curves["ext2"])
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i * 30)
	}
	chart := &report.Chart{
		Title:  "ops/sec vs time, cold start (Figure 2)",
		XLabel: "time (30s buckets, 0..1200s)",
		X:      xs,
		Series: []report.ChartSeries{
			{Name: "ext2", Y: curves["ext2"], Marker: '2'},
			{Name: "ext3", Y: curves["ext3"], Marker: '3'},
			{Name: "xfs", Y: curves["xfs"], Marker: 'x'},
		},
	}
	if _, err := chart.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The "what do you report?" table: the answer depends entirely on
	// the moment of measurement.
	fmt.Println("\nif you measured for one minute starting at...")
	for _, tIdx := range []int{2, 10, 20, n - 2} {
		if tIdx >= n {
			continue
		}
		e2, e3, xf := curves["ext2"][tIdx], curves["ext3"][tIdx], curves["xfs"][tIdx]
		fastest, slowest := e2, e2
		for _, v := range []float64{e3, xf} {
			if v > fastest {
				fastest = v
			}
			if v < slowest {
				slowest = v
			}
		}
		ratio := 1.0
		if slowest > 0 {
			ratio = fastest / slowest
		}
		fmt.Printf("  t=%4ds: ext2=%6.0f ext3=%6.0f xfs=%6.0f  (spread %.1fx)\n",
			tIdx*30, e2, e3, xf, ratio)
	}
	fmt.Println("\npaper: \"Only the entire graph provides a fair and accurate")
	fmt.Println("characterization of the file system performance across this dimension.\"")
}
