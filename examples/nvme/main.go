// NVMe: device-level concurrency made visible. The same scattered
// 2 KB random-read workload runs on the single-service disk and on
// the multi-queue NVMe model at 1, 2, and 4 channels.
//
// The block-layer queue dispatches while the device has a free
// service slot, so an NVMe device with K channels genuinely services
// K requests at once: throughput scales with the channel count until
// the closed-loop threads can no longer keep the channels fed. The
// disk, serviced one request at a time, gets nothing from the same
// queue — on modern SSDs, queue-depth sweeps measure exactly this
// device-side parallelism, which a one-at-a-time device model erases.
package main

import (
	"fmt"
	"log"
	"os"

	fsbench "repro"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	type row struct {
		label string
		tp    float64
		p99us float64
	}
	var rows []row

	run := func(label, device string, channels int, dur, win fsbench.Time) {
		stack := fsbench.StackConfig{
			FS: "ext2", Device: device, NVMeChannels: channels,
			DiskBytes: 4 << 30, RAMBytes: 64 << 20, OSReserveBytes: 13 << 20,
			CachePolicy: "lru", Scheduler: "ncq",
		}
		exp := &fsbench.Experiment{
			Name:  "nvme-" + label,
			Stack: stack,
			// 512 MB file ≫ the ~51 MB cache: reads reach the device;
			// 8 threads keep up to 8 requests outstanding.
			Workload:      fsbench.RandomRead(512<<20, 2<<10, 8),
			Runs:          2,
			Duration:      dur,
			MeasureWindow: win,
			ColdCache:     true,
			Seed:          7,
			Kinds:         []fsbench.OpKind{workload.OpReadRand},
		}
		res, err := exp.Run()
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{label, res.Throughput.Mean,
			float64(res.Hist.Percentile(99)) / 1e3})
	}

	// The disk gets a longer window (it does ~100 ops/s); the NVMe
	// runs simulate far more ops per virtual second, so short windows
	// keep the example quick. Throughput is a rate either way.
	run("hdd", "hdd", 0, 20*fsbench.Second, 10*fsbench.Second)
	for _, ch := range []int{1, 2, 4} {
		run(fmt.Sprintf("%dch", ch), "nvme", ch, 3*fsbench.Second, 1500*fsbench.Millisecond)
	}

	t := &report.Table{
		Title:   "scattered 2 KB random reads, 8 threads, ncq at queue depth 32",
		Headers: []string{"device", "ops/s", "p99 us"},
	}
	for _, r := range rows {
		t.AddRow(r.label, fmt.Sprintf("%.0f", r.tp), fmt.Sprintf("%.0f", r.p99us))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nnvme 1 channel vs hdd: %.0fx — no seek, no rotation\n", rows[1].tp/rows[0].tp)
	fmt.Printf("nvme 4 vs 1 channels: %.2fx — the queue keeps all four channels busy\n",
		rows[3].tp/rows[1].tp)
	fmt.Printf("the residue: per-request command overhead and a finite closed loop keep it shy of 4.00x\n")
}
