// Fragility: reproduce Figure 1's lesson end to end — sweep file size
// across the page-cache boundary, find the cliff, zoom into the
// transition, and watch run-to-run variance explode exactly where the
// working set meets the cache.
package main

import (
	"fmt"
	"log"

	fsbench "repro"
)

func main() {
	stack := fsbench.PaperStack()
	cacheMB := stack.CacheBytesMean() >> 20
	fmt.Printf("stack: %s (expected page cache ~%d MB)\n\n", stack, cacheMB)

	// Coarse sweep, 128 MB steps (fast version of Figure 1).
	var sizes []int64
	for mb := int64(128); mb <= 896; mb += 128 {
		sizes = append(sizes, mb<<20)
	}
	sweep := fsbench.FileSizeSweep(stack, sizes, 4, 30*fsbench.Second, 15*fsbench.Second, 1)
	res, err := sweep.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("file size   ops/s     rsd%   flags")
	for _, p := range res.Points {
		s := p.Result.Throughput
		fmt.Printf("%6dm   %8.0f   %5.1f   %s\n",
			int64(p.X)>>20, s.Mean, s.RSD*100, p.Result.Flags)
	}
	first := res.Points[0].Result.Throughput.Mean
	last := res.Points[len(res.Points)-1].Result.Throughput.Mean
	fmt.Printf("\nspan: %.0fx between the smallest and largest file\n", first/last)

	// Now zoom: the cliff search localizes the drop to a few MB.
	cfg := fsbench.SelfScaleConfig{
		Stack: stack, Runs: 1,
		Duration: 20 * fsbench.Second, Window: 10 * fsbench.Second, Seed: 2,
	}
	base := fsbench.SelfScaleParams{IOSize: 2 << 10, ReadFrac: 1, SeqFrac: 0, Threads: 1}
	cliff, err := fsbench.CliffSearch(cfg, base, 384<<20, 448<<20, 3, 2<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzoom: %s\n", cliff)
	fmt.Println("\npaper: \"even the simplest of benchmarks can be fragile, producing")
	fmt.Println("performance results spanning orders of magnitude\" — q.e.d.")
}
