// Nanobench: run the paper's §4 proposal — a suite of nano-benchmarks
// that each isolate one file-system dimension — across the three
// file-system models, producing a per-dimension comparison instead of
// one meaningless aggregate.
package main

import (
	"fmt"
	"log"

	fsbench "repro"
)

func main() {
	suite := fsbench.DefaultNanoSuite()
	systems := []string{"ext2", "ext3", "xfs"}
	results := map[string][]fsbench.NanoScore{}

	for _, fsName := range systems {
		stack := fsbench.PaperStack()
		stack.FS = fsName
		// A smaller RAM keeps the cache benches quick.
		stack.RAMBytes = 128 << 20
		stack.OSReserveBytes = 26 << 20
		stack.OSReserveJitter = 0
		scores, err := suite.RunAll(stack, 1)
		if err != nil {
			log.Fatalf("%s: %v", fsName, err)
		}
		results[fsName] = scores
	}

	fmt.Printf("%-18s %-10s %14s %14s %14s\n", "nano-benchmark", "dimension", "ext2", "ext3", "xfs")
	fmt.Println("--------------------------------------------------------------------------")
	for i, b := range suite.Benchmarks {
		fmt.Printf("%-18s %-10s", b.Name, b.Dimension)
		for _, fsName := range systems {
			fmt.Printf(" %14.1f", results[fsName][i].Value)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, b := range []int{2, 3, 8} {
		fmt.Printf("units for %-18s %s\n", suite.Benchmarks[b].Name+":", results["ext2"][b].Unit)
	}
	fmt.Println("\neach row isolates one dimension; no row pretends to summarize the others.")
}
