// Contention: the scaling dimension made visible. A thread-count
// sweep (1 → 64) over a disk-bound random-read workload, at device
// queue depth 1 and 32 under the NCQ scheduler.
//
// With the discrete-event device queue, threads genuinely contend:
// throughput saturates once the disk is the bottleneck instead of
// scaling linearly by construction, the deep queue buys extra
// throughput because the scheduler reorders across a 32-request
// window, and p99 latency inflates with thread count as requests
// queue — and, at depth 32, as reordering bypasses unlucky requests.
package main

import (
	"fmt"
	"log"
	"os"

	fsbench "repro"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	counts := []int{1, 4, 16, 64}
	depths := []int{1, 32}

	// A scaled-down testbed (64 MB RAM, 4 GB disk) so the example runs
	// in seconds; the 1 GB file is ≫ cache (disk-bound) and wide
	// enough on disk that reordering has seek distance to reclaim.
	mk := func(threads int) *fsbench.Workload {
		return fsbench.RandomRead(1<<30, 2<<10, threads)
	}

	type point struct {
		tp    float64
		p99ms float64
	}
	results := map[int][]point{}
	for _, depth := range depths {
		stack := fsbench.StackConfig{
			FS: "ext2", Device: "hdd", DiskBytes: 4 << 30,
			RAMBytes: 64 << 20, OSReserveBytes: 13 << 20,
			CachePolicy: "lru",
			Scheduler:   "ncq",
			QueueDepth:  depth,
		}
		sweep := fsbench.ThreadCountSweep(stack, mk, counts, 2,
			20*fsbench.Second, 10*fsbench.Second, 11+uint64(depth))
		sweep.Base.ColdCache = true
		sweep.Base.Kinds = []fsbench.OpKind{workload.OpReadRand}
		res, err := sweep.Run()
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range res.Points {
			results[depth] = append(results[depth], point{
				tp:    p.Result.Throughput.Mean,
				p99ms: float64(p.Result.Hist.Percentile(99)) / 1e6,
			})
		}
	}

	t := &report.Table{
		Title:   "thread-count sweep, disk-bound 2 KB random reads (ncq)",
		Headers: []string{"threads", "qd=1 ops/s", "qd=1 p99 ms", "qd=32 ops/s", "qd=32 p99 ms"},
	}
	for i, n := range counts {
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", results[1][i].tp),
			fmt.Sprintf("%.1f", results[1][i].p99ms),
			fmt.Sprintf("%.0f", results[32][i].tp),
			fmt.Sprintf("%.1f", results[32][i].p99ms),
		)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	last := len(counts) - 1
	fmt.Printf("\nthroughput saturation: 64 threads give %.1fx the 1-thread ops/s at qd=32 (not 64x)\n",
		results[32][last].tp/results[32][0].tp)
	fmt.Printf("queue depth at 64 threads: qd=32 sustains %.2fx the qd=1 throughput\n",
		results[32][last].tp/results[1][last].tp)
	fmt.Printf("the price: p99 inflates from %.1f ms (1 thread) to %.1f ms (64 threads) at qd=32\n",
		results[32][0].p99ms, results[32][last].p99ms)
}
