// Comparison: "which file system is better?" is, per the paper, an
// ill-defined question. This example answers the well-defined
// version: on THIS workload, in THIS regime, with THIS significance
// level — and lets the harness refuse when the data cannot support a
// verdict.
package main

import (
	"fmt"
	"log"

	fsbench "repro"
)

func run(fsName string, fileBytes int64, cold bool, duration fsbench.Time) *fsbench.Result {
	stack := fsbench.PaperStack()
	stack.FS = fsName
	exp := &fsbench.Experiment{
		Name:          fsName,
		Stack:         stack,
		Workload:      fsbench.RandomRead(fileBytes, 2<<10, 1),
		Runs:          5,
		Duration:      duration,
		MeasureWindow: duration / 2,
		ColdCache:     cold,
		Seed:          11,
	}
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	// Regime 1: disk-bound (1.5 GB file). Layout matters; XFS's
	// contiguous extents should win — and the tests must agree.
	fmt.Println("regime 1: disk-bound random read (1.5 GB file, steady state)")
	a := run("xfs", 3<<29, false, 30*fsbench.Second)
	b := run("ext2", 3<<29, false, 30*fsbench.Second)
	cmp := fsbench.Compare(a, b, 0.05)
	fmt.Printf("  xfs:  %.0f ops/s (rsd %.1f%%)\n", a.Throughput.Mean, a.Throughput.RSD*100)
	fmt.Printf("  ext2: %.0f ops/s (rsd %.1f%%)\n", b.Throughput.Mean, b.Throughput.RSD*100)
	fmt.Printf("  verdict: %v (speedup %.2fx, welch p=%.2g, mann-whitney p=%.2g)\n\n",
		cmp.Verdict, cmp.SpeedupAB, cmp.Welch.P, cmp.MannP)

	// Regime 2: memory-bound (64 MB file). The file systems are
	// identical once cached; any "winner" here would be noise.
	fmt.Println("regime 2: memory-bound random read (64 MB file)")
	c := run("xfs", 64<<20, false, 30*fsbench.Second)
	d := run("ext2", 64<<20, false, 30*fsbench.Second)
	cmp2 := fsbench.Compare(c, d, 0.05)
	fmt.Printf("  xfs:  %.0f ops/s\n", c.Throughput.Mean)
	fmt.Printf("  ext2: %.0f ops/s\n", d.Throughput.Mean)
	fmt.Printf("  verdict: %v (welch p=%.2g)\n\n", cmp2.Verdict, cmp2.Welch.P)

	// Regime 3: mid-warm-up (cold cache, short run). The harness must
	// refuse: the data is non-stationary and any number is a lie.
	fmt.Println("regime 3: measured during cache warm-up (cold, 120 s)")
	e := run("xfs", 410<<20, true, 120*fsbench.Second)
	f := run("ext2", 410<<20, true, 120*fsbench.Second)
	cmp3 := fsbench.Compare(e, f, 0.05)
	fmt.Printf("  xfs:  %.0f ops/s flags=[%v]\n", e.Throughput.Mean, e.Flags)
	fmt.Printf("  ext2: %.0f ops/s flags=[%v]\n", f.Throughput.Mean, f.Flags)
	fmt.Printf("  verdict: %v\n\n", cmp3.Verdict)
	fmt.Println("the third verdict is the methodological contribution: a harness that")
	fmt.Println("knows when its own numbers are meaningless.")
}
