// Open loop vs closed loop: the harness-structure artifact made
// visible. The same disk serves the same 2 KB random reads at the
// same intended rates — once from a closed loop (think-paced threads,
// arrivals gated by completions) and once from an open loop (Poisson
// generator feeding a worker pool, arrivals independent of
// completions).
//
// Below the device's saturation knee the two agree: matched
// throughput, comparable tails. Past the knee the closed loop
// self-throttles — it simply issues less, and its latency stays at
// queue-depth scale — while the open loop's backlog grows without
// bound and latency measured from arrival explodes. A benchmark that
// only ever runs closed loops structurally cannot observe saturation
// latency; that is the trap the paper warns about.
package main

import (
	"fmt"
	"log"
	"os"

	fsbench "repro"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	const workers = 8
	// Scaled-down testbed (64 MB RAM, ~51 MB cache, 4 GB disk): the
	// 512 MB file is disk-bound and the example runs in seconds.
	stack := fsbench.StackConfig{
		FS: "ext2", Device: "hdd", DiskBytes: 4 << 30,
		RAMBytes: 64 << 20, OSReserveBytes: 13 << 20,
		CachePolicy: "lru", Scheduler: "ncq",
	}
	mkExp := func(name string, w *fsbench.Workload) *fsbench.Experiment {
		return &fsbench.Experiment{
			Name:          name,
			Stack:         stack,
			Workload:      w,
			Runs:          1,
			Duration:      20 * fsbench.Second,
			MeasureWindow: 10 * fsbench.Second,
			ColdCache:     true,
			Seed:          7,
			Kinds:         []fsbench.OpKind{workload.OpReadRand},
		}
	}

	// Measure capacity with an unthrottled closed loop.
	capRes, err := mkExp("capacity", fsbench.RandomRead(512<<20, 2<<10, workers)).Run()
	if err != nil {
		log.Fatal(err)
	}
	capacity := capRes.Throughput.Mean
	fmt.Printf("closed-loop saturation: %.0f ops/s\n\n", capacity)

	t := &report.Table{
		Title: "same offered load, two harness structures",
		Headers: []string{"offered", "closed ops/s", "closed p99 ms",
			"open ops/s", "open p99 ms", "open done %", "backlog peak"},
	}
	var lastClosed, lastOpen float64
	for _, frac := range []float64{0.5, 0.9, 1.25} {
		rate := frac * capacity
		closed := fsbench.RandomRead(512<<20, 2<<10, workers)
		closed.Name = "closedpaced"
		think := fsbench.Time(float64(workers) / rate * float64(fsbench.Second))
		closed.Threads[0].Flowops = append(closed.Threads[0].Flowops,
			fsbench.Flowop{Kind: workload.OpThink, Think: think})
		cRes, err := mkExp("closed", closed).Run()
		if err != nil {
			log.Fatal(err)
		}
		oRes, err := mkExp("open", fsbench.OpenLoopRead(512<<20, 2<<10, workers, rate)).Run()
		if err != nil {
			log.Fatal(err)
		}
		lastClosed = float64(cRes.Hist.Percentile(99)) / 1e6
		lastOpen = float64(oRes.Hist.Percentile(99)) / 1e6
		t.AddRow(
			fmt.Sprintf("%.2fx", frac),
			fmt.Sprintf("%.0f", cRes.Throughput.Mean),
			fmt.Sprintf("%.1f", lastClosed),
			fmt.Sprintf("%.0f", oRes.Throughput.Mean),
			fmt.Sprintf("%.1f", lastOpen),
			fmt.Sprintf("%.1f", oRes.Load.CompletionRatio()*100),
			fmt.Sprintf("%d", oRes.Load.BacklogPeak),
		)
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npast the knee the closed loop self-throttles (p99 %.0f ms) while the open loop's\n", lastClosed)
	fmt.Printf("arrival-to-completion p99 explodes (%.0f ms, %.1fx) — same device, same ops,\n",
		lastOpen, lastOpen/lastClosed)
	fmt.Println("different harness structure. Latency here is measured from arrival (queue entry).")
}
