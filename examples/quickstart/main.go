// Quickstart: measure the paper's case-study workload — one thread
// randomly reading one file — on the paper's testbed, the way the
// paper says it should be measured: multiple runs, confidence
// intervals, a full latency distribution, and refusal flags instead
// of a lone number.
package main

import (
	"fmt"
	"log"
	"os"

	fsbench "repro"
	"repro/internal/report"
)

func main() {
	// The system under test: Ext2 over a 7200 RPM SATA disk model,
	// 512 MB RAM of which the OS keeps ~102 MB (±2 MB run to run).
	stack := fsbench.PaperStack()

	// The workload: Filebench-style "randomread" — 2 KB random reads
	// from a single 256 MB file, one thread.
	w := fsbench.RandomRead(256<<20, 2<<10, 1)

	// What does this benchmark actually measure? Ask before running.
	fmt.Println("dimension coverage for this workload:")
	for d, cov := range fsbench.ClassifyWorkload(w, stack.CacheBytesMean()) {
		fmt.Printf("  %-10s %s\n", d, cov)
	}

	exp := &fsbench.Experiment{
		Name:          "quickstart-randomread",
		Stack:         stack,
		Workload:      w,
		Runs:          5,
		Duration:      30 * fsbench.Second,
		MeasureWindow: 15 * fsbench.Second,
		Seed:          42,
	}
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}

	s := res.Throughput
	fmt.Printf("\nthroughput over %d runs: %.0f ops/s ± %.0f (rsd %.1f%%, 95%% CI [%.0f, %.0f])\n",
		s.N, s.Mean, s.StdDev, s.RSD*100, s.CI95Lo, s.CI95Hi)
	fmt.Printf("flags: %s\n\n", res.Flags)

	if err := report.Histogram(os.Stdout, "read latency", res.Hist); err != nil {
		log.Fatal(err)
	}

	// The same experiment with the file 4x larger: suddenly a
	// completely different benchmark, same "randomread" name.
	exp2 := &fsbench.Experiment{
		Name:          "quickstart-randomread-1GB",
		Stack:         stack,
		Workload:      fsbench.RandomRead(1<<30, 2<<10, 1),
		Runs:          5,
		Duration:      30 * fsbench.Second,
		MeasureWindow: 15 * fsbench.Second,
		Seed:          42,
	}
	res2, err := exp2.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame workload, 1 GB file: %.0f ops/s — %.0fx slower, flags: %s\n",
		res2.Throughput.Mean, s.Mean/res2.Throughput.Mean, res2.Flags)
	fmt.Println("\n(this factor is the paper's point: \"random read performance of ext2\"")
	fmt.Println(" is not a number, it is a curve over working-set size)")
}
