package fsbench

// Benchmark harness: one benchmark per paper table/figure, plus the
// ablation benches DESIGN.md §5 calls out. Each figure bench
// regenerates a scaled-down version of its experiment per iteration
// (so `go test -bench=.` terminates in reasonable time) and reports
// the figure's *shape* as benchmark metrics — the cliff ratio, the
// transition-region RSD, the warm-up divergence, the mode count. The
// full-scale regeneration with the paper's parameters is
// `cmd/fsrepro -all` (add -full for 20-minute runs); EXPERIMENTS.md
// records its output against the paper.

import (
	"fmt"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/survey"
	"repro/internal/workload"
)

// benchStack is the paper's testbed scaled to 1/8 memory (64 MB RAM,
// ~51 MB page cache) so each bench iteration stays subsecond while
// preserving every ratio that matters.
func benchStack() StackConfig {
	return StackConfig{
		FS: "ext2", Device: "hdd", DiskBytes: 8 << 30,
		RAMBytes: 64 << 20, OSReserveBytes: 13 << 20, OSReserveJitter: 1 << 20,
		CachePolicy: "lru",
	}
}

// BenchmarkFigure1 regenerates the Figure 1 sweep shape: throughput
// and relative standard deviation versus file size across the cache
// boundary. Reported metrics: the plateau-to-floor cliff ratio and
// the worst transition-region RSD.
func BenchmarkFigure1(b *testing.B) {
	stack := benchStack()
	cacheMB := stack.CacheBytesMean() >> 20
	sizes := []int64{
		cacheMB / 4 << 20, cacheMB / 2 << 20, (cacheMB - 8) << 20,
		(cacheMB + 2) << 20, (cacheMB + 16) << 20, cacheMB * 3 << 20,
	}
	var cliffRatio, worstRSD float64
	for i := 0; i < b.N; i++ {
		sweep := FileSizeSweep(stack, sizes, 3, 15*Second, 5*Second, uint64(i)*17+1)
		res, err := sweep.Run()
		if err != nil {
			b.Fatal(err)
		}
		sums := res.Summaries()
		cliffRatio = sums[0].Mean / sums[len(sums)-1].Mean
		worstRSD = 0
		for _, s := range sums {
			if s.RSD > worstRSD {
				worstRSD = s.RSD
			}
		}
	}
	b.ReportMetric(cliffRatio, "cliff-ratio")
	b.ReportMetric(worstRSD*100, "worst-rsd-%")
}

// BenchmarkFigure1Zoom regenerates the §3.1 zoom: the cliff search
// narrows the transition to a small window (the paper: < 6 MB).
func BenchmarkFigure1Zoom(b *testing.B) {
	stack := benchStack()
	var widthMB float64
	for i := 0; i < b.N; i++ {
		cfg := SelfScaleConfig{Stack: stack, Runs: 1,
			Duration: 10 * Second, Window: 5 * Second, Seed: uint64(i) + 1}
		base := SelfScaleParams{IOSize: 2 << 10, ReadFrac: 1, SeqFrac: 0, Threads: 1}
		cliff, err := CliffSearch(cfg, base,
			stack.CacheBytesMean()/2, stack.CacheBytesMean()*3, 3, 2<<20)
		if err != nil {
			b.Fatal(err)
		}
		widthMB = float64(cliff.Width()) / (1 << 20)
	}
	b.ReportMetric(widthMB, "cliff-window-MB")
}

// BenchmarkFigure2 regenerates the warm-up timeline: ext2, ext3, and
// xfs random-reading a cache-fitting file from cold. Reported
// metrics: the end-to-end warm-up ratio and the maximum divergence
// between file systems mid-transition.
func BenchmarkFigure2(b *testing.B) {
	var rampRatio, divergence float64
	for i := 0; i < b.N; i++ {
		curves := map[string][]float64{}
		for _, fsName := range []string{"ext2", "ext3", "xfs"} {
			stack := benchStack()
			stack.FS = fsName
			stack.OSReserveJitter = 0
			exp := &Experiment{
				Name:  "fig2-" + fsName,
				Stack: stack,
				// ~80% of cache, as 410 MB was of the paper's 512 MB.
				Workload:       RandomRead(stack.CacheBytesMean()*4/5, 2<<10, 1),
				Runs:           1,
				Duration:       150 * Second,
				ColdCache:      true,
				Seed:           uint64(i) + 7,
				SeriesInterval: 5 * Second,
			}
			res, err := exp.Run()
			if err != nil {
				b.Fatal(err)
			}
			curves[fsName] = res.PerRun[0].Series.Rates()
		}
		e2 := curves["ext2"]
		rampRatio = e2[len(e2)-2] / (e2[0] + 1)
		divergence = 0
		for t := range e2 {
			lo, hi := e2[t], e2[t]
			for _, fsName := range []string{"ext3", "xfs"} {
				c := curves[fsName]
				if t < len(c) {
					if c[t] < lo {
						lo = c[t]
					}
					if c[t] > hi {
						hi = c[t]
					}
				}
			}
			if lo > 0 && hi/lo > divergence {
				divergence = hi / lo
			}
		}
	}
	b.ReportMetric(rampRatio, "warmup-ramp-x")
	b.ReportMetric(divergence, "fs-divergence-x")
}

// BenchmarkFigure3 regenerates the three latency histograms: file
// far below cache (unimodal memory), ~2x cache (bimodal), and far
// above cache (unimodal disk). Reported metric: the mode counts of
// the three panels encoded as a three-digit number (expect 121).
func BenchmarkFigure3(b *testing.B) {
	stack := benchStack()
	cache := stack.CacheBytesMean()
	var modeCode float64
	for i := 0; i < b.N; i++ {
		code := 0
		for _, size := range []int64{cache / 8, cache * 2, cache * 24} {
			exp := &Experiment{
				Name:     "fig3",
				Stack:    stack,
				Workload: RandomRead(size, 2<<10, 1),
				Runs:     1, Duration: 20 * Second, MeasureWindow: 8 * Second,
				Seed:  uint64(i) + 3,
				Kinds: []OpKind{workload.OpReadRand},
			}
			res, err := exp.Run()
			if err != nil {
				b.Fatal(err)
			}
			code = code*10 + len(res.Hist.Modes(0.05))
		}
		modeCode = float64(code)
	}
	b.ReportMetric(modeCode, "mode-pattern")
}

// BenchmarkFigure4 regenerates the histogram timeline: a cold run on
// a cache-fitting file, snapshotted periodically. Reported metrics:
// the dominant-mode bucket of the first and last snapshots (expect
// disk-scale ~bucket 22+ early, memory-scale ~bucket 12 late).
func BenchmarkFigure4(b *testing.B) {
	stack := benchStack()
	stack.OSReserveJitter = 0
	var earlyMode, lateMode float64
	for i := 0; i < b.N; i++ {
		exp := &Experiment{
			Name:             "fig4",
			Stack:            stack,
			Workload:         RandomRead(stack.CacheBytesMean()/2, 2<<10, 1),
			Runs:             1,
			Duration:         120 * Second,
			ColdCache:        true,
			Seed:             uint64(i) + 11,
			TimelineInterval: 10 * Second,
			Kinds:            []OpKind{workload.OpReadRand},
		}
		res, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		tl := res.PerRun[0].Timeline
		first, last := tl.At(0), tl.At(tl.Snapshots()-1)
		if first == nil || last == nil || first.Count() == 0 || last.Count() == 0 {
			b.Fatal("timeline snapshots missing")
		}
		em := first.Modes(0.05)
		lm := last.Modes(0.05)
		earlyMode = float64(em[len(em)-1]) // slowest early mode
		lateMode = float64(lm[0])          // fastest late mode
	}
	b.ReportMetric(earlyMode, "early-mode-bucket")
	b.ReportMetric(lateMode, "late-mode-bucket")
}

// BenchmarkTable1 regenerates the survey table and verifies its
// aggregate invariants (usage totals, ad-hoc dominance).
func BenchmarkTable1(b *testing.B) {
	var adhoc float64
	for i := 0; i < b.N; i++ {
		entries := survey.Table1()
		if len(entries) != 19 {
			b.Fatal("table rows changed")
		}
		u1, u2 := survey.Totals(entries)
		if u1 == 0 || u2 == 0 {
			b.Fatal("empty totals")
		}
		adhoc = survey.AdHocShare(entries)
	}
	b.ReportMetric(adhoc*100, "adhoc-share-%")
}

// --- Ablations (DESIGN.md §5) -----------------------------------------

// BenchmarkAblationJitter quantifies design decision 3: the
// cache-availability jitter is what makes the transition region
// fragile. With jitter off, transition-region RSD collapses.
func BenchmarkAblationJitter(b *testing.B) {
	run := func(b *testing.B, jitter int64) {
		var rsd float64
		for i := 0; i < b.N; i++ {
			stack := benchStack()
			stack.OSReserveJitter = jitter
			size := stack.CacheBytesMean() + 1<<20 // just past the cache
			exp := &Experiment{
				Name:     "jitter",
				Stack:    stack,
				Workload: RandomRead(size, 2<<10, 1),
				Runs:     5, Duration: 15 * Second, MeasureWindow: 5 * Second,
				Seed: uint64(i)*13 + 1,
			}
			res, err := exp.Run()
			if err != nil {
				b.Fatal(err)
			}
			rsd = res.Throughput.RSD
		}
		b.ReportMetric(rsd*100, "transition-rsd-%")
	}
	b.Run("jitter=0MB", func(b *testing.B) { run(b, 0) })
	b.Run("jitter=1MB", func(b *testing.B) { run(b, 1<<20) })
}

// BenchmarkAblationElevator quantifies design decision 2: LBA-sorted
// write-back batches versus FCFS submission of the same batch.
func BenchmarkAblationElevator(b *testing.B) {
	mkReqs := func(rng *sim.RNG) []device.Request {
		reqs := make([]device.Request, 128)
		for i := range reqs {
			reqs[i] = device.Request{Op: device.Write, LBA: rng.Int63n(1 << 28), Sectors: 8, Owner: device.OwnerNone}
		}
		return reqs
	}
	b.Run("elevator", func(b *testing.B) {
		var total sim.Time
		for i := 0; i < b.N; i++ {
			h := device.NewHDD(device.DefaultHDD(), sim.NewRNG(uint64(i)))
			done, err := device.SubmitBatch(h, 0, mkReqs(sim.NewRNG(uint64(i)+99)))
			if err != nil {
				b.Fatal(err)
			}
			total = done
		}
		b.ReportMetric(total.Seconds()*1000, "virtual-ms/batch")
	})
	b.Run("fcfs", func(b *testing.B) {
		var total sim.Time
		for i := 0; i < b.N; i++ {
			h := device.NewHDD(device.DefaultHDD(), sim.NewRNG(uint64(i)))
			done, err := device.SubmitBatchFCFS(h, 0, mkReqs(sim.NewRNG(uint64(i)+99)))
			if err != nil {
				b.Fatal(err)
			}
			total = done
		}
		b.ReportMetric(total.Seconds()*1000, "virtual-ms/batch")
	})
}

// BenchmarkAblationEvictionPolicy sweeps the cache's eviction policy
// under a Zipf working set 2x the cache — the axis the paper says no
// benchmark measures.
func BenchmarkAblationEvictionPolicy(b *testing.B) {
	for _, policy := range []string{"lru", "fifo", "clock", "random", "2q", "arc"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				stack := benchStack()
				stack.CachePolicy = policy
				stack.OSReserveJitter = 0
				exp := &Experiment{
					Name:     "evict-" + policy,
					Stack:    stack,
					Workload: zipfReadWorkload(stack.CacheBytesMean() * 2),
					Runs:     1, Duration: 20 * Second, MeasureWindow: 10 * Second,
					Seed: uint64(i) + 5,
				}
				res, err := exp.Run()
				if err != nil {
					b.Fatal(err)
				}
				hit = res.PerRun[0].HitRatio
			}
			b.ReportMetric(hit*100, "hit-%")
		})
	}
}

// zipfReadWorkload reads Zipf-popular files totaling `total` bytes.
func zipfReadWorkload(total int64) *Workload {
	const files = 512
	return &Workload{
		Name: "zipfread",
		FileSets: []FileSet{{
			Name: "z", Dir: "/z", Entries: files,
			MeanSize: total / files, PreallocFrac: 1,
		}},
		Threads: []ThreadSpec{{
			Name: "r", Count: 1, PerOpOverhead: workload.DefaultPerOpOverhead,
			Flowops: []Flowop{{Kind: workload.OpReadRand, FileSet: "z", IOSize: 2 << 10, Zipf: true}},
		}},
	}
}

// BenchmarkAblationReadahead sweeps the readahead policy on a cold
// sequential scan: none vs fixed vs adaptive.
func BenchmarkAblationReadahead(b *testing.B) {
	for _, ra := range []string{"none", "fixed", "adaptive"} {
		ra := ra
		b.Run(ra, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				stack := benchStack()
				stack.Readahead = ra
				stack.OSReserveJitter = 0
				exp := &Experiment{
					Name:     "ra-" + ra,
					Stack:    stack,
					Workload: SequentialRead(128<<20, 64<<10, 1),
					Runs:     1, Duration: 10 * Second,
					ColdCache: true,
					Seed:      uint64(i) + 9,
				}
				res, err := exp.Run()
				if err != nil {
					b.Fatal(err)
				}
				// ops/s * 64 KB per op => bytes/sec.
				mbps = res.Throughput.Mean * 64 * 1024 / 1e6
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkMultiLevelCacheSteps exercises the paper's prediction that
// "more modern file systems rely on multiple cache levels ... the
// performance curve will have multiple distinctive steps": with a
// flash L2, the working-set sweep shows three plateaus. The metric is
// the number of distinct throughput levels found.
func BenchmarkMultiLevelCacheSteps(b *testing.B) {
	var levels float64
	for i := 0; i < b.N; i++ {
		stack := benchStack()
		stack.L2Bytes = 128 << 20
		stack.OSReserveJitter = 0
		cache := stack.CacheBytesMean()
		sizes := []int64{cache / 2, cache * 2, 600 << 20}
		var tps []float64
		for _, size := range sizes {
			exp := &Experiment{
				Name:     "l2",
				Stack:    stack,
				Workload: RandomRead(size, 2<<10, 1),
				Runs:     1, Duration: 20 * Second, MeasureWindow: 8 * Second,
				Seed: uint64(i) + 21,
			}
			res, err := exp.Run()
			if err != nil {
				b.Fatal(err)
			}
			tps = append(tps, res.Throughput.Mean)
		}
		// Count distinct levels: each must differ from the previous
		// by at least 2x.
		n := 1
		for j := 1; j < len(tps); j++ {
			if tps[j-1] > 2*tps[j] {
				n++
			}
		}
		levels = float64(n)
	}
	b.ReportMetric(levels, "plateaus")
}

// BenchmarkContention quantifies design decision 5 (queue depth and
// scheduler): a 16-thread disk-bound random read at queue depth 1 vs
// 32 under NCQ, on the single-service disk and on the multi-queue
// NVMe device (4 channels). The metrics are the depth-32 throughput
// gain and its p99 latency cost per device.
func BenchmarkContention(b *testing.B) {
	run := func(b *testing.B, dev string, depth, shards int, mode string, i int) (tp, p99ms float64) {
		stack := benchStack()
		stack.OSReserveJitter = 0
		stack.Scheduler = "ncq"
		stack.QueueDepth = depth
		stack.Shards = shards
		stack.ShardMode = mode
		duration, window := 15*Second, 5*Second
		if dev == "nvme" {
			stack.Device = "nvme"
			stack.NVMeChannels = 4
			// The NVMe device is ~100x faster, so the same virtual
			// duration would simulate ~100x the operations; shorten it
			// to keep the 1-CPU CI bench job's wall time bounded.
			duration, window = 5*Second, 2*Second
		}
		exp := &Experiment{
			Name:     "contention",
			Stack:    stack,
			Workload: RandomRead(1<<30, 2<<10, 16),
			Runs:     1, Duration: duration, MeasureWindow: window,
			ColdCache: true,
			// Seed by iteration only, so the qd=1 and qd=32 metrics
			// compare identical request streams.
			Seed:  uint64(i) + 31,
			Kinds: []OpKind{workload.OpReadRand},
		}
		res, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.Throughput.Mean, float64(res.Hist.Percentile(99)) / 1e6
	}
	for _, dev := range []string{"hdd", "nvme"} {
		for _, depth := range []int{1, 32} {
			dev, depth := dev, depth
			b.Run(fmt.Sprintf("dev=%s/qd=%d", dev, depth), func(b *testing.B) {
				var tp, p99 float64
				for i := 0; i < b.N; i++ {
					tp, p99 = run(b, dev, depth, 1, ShardModeReplica, i)
				}
				b.ReportMetric(tp, "ops/s")
				b.ReportMetric(p99, "p99-ms")
			})
		}
	}
	// Sharded-kernel legs: the qd=32 contention run again on 4
	// event-loop shards (4 replica stacks, 4 threads each), so the
	// bench artifacts track the parallel kernel's wall-clock cost per
	// device model. The per-run throughput differs from the shards=1
	// legs by design — 4 replica devices serve 4x the aggregate — so
	// the interesting series here is ns/op, not ops/s.
	for _, dev := range []string{"hdd", "nvme"} {
		dev := dev
		b.Run(fmt.Sprintf("dev=%s/qd=32/shards=4", dev), func(b *testing.B) {
			var tp, p99 float64
			for i := 0; i < b.N; i++ {
				tp, p99 = run(b, dev, 32, 4, ShardModeReplica, i)
			}
			b.ReportMetric(tp, "ops/s")
			b.ReportMetric(p99, "p99-ms")
		})
	}
	// Shared-device legs: the same qd=32 contention run partitioned as
	// two thread shards plus a device-owning shard — ONE device, so
	// unlike the replica legs these throughputs are comparable to the
	// shards=1 legs (minus the disclosed submit-hop lookahead and the
	// split cache). ns/op tracks the cross-shard mailbox cost per
	// device model.
	for _, dev := range []string{"hdd", "nvme"} {
		dev := dev
		b.Run(fmt.Sprintf("dev=%s/qd=32/shards=2/mode=shared", dev), func(b *testing.B) {
			var tp, p99 float64
			for i := 0; i < b.N; i++ {
				tp, p99 = run(b, dev, 32, 2, ShardModeSharedDevice, i)
			}
			b.ReportMetric(tp, "ops/s")
			b.ReportMetric(p99, "p99-ms")
		})
	}
	// Backlog-drain legs: the thread-count-driven regime the sharded
	// kernel exists for (ROADMAP's 10k-1M virtual threads). 100k cold
	// closed-loop readers each submit a miss at t=0 and the run is the
	// drain of that backlog, so total event work is O(threads) and
	// partitions cleanly across shards: wall-clock ns/op is the
	// speedup metric (≥2x at shards=4 needs GOMAXPROCS >= 2; on a
	// 1-CPU box the shards serialize and ns/op only tracks the
	// smaller per-shard event heaps).
	drain := func(b *testing.B, shards int, mode string) {
		for i := 0; i < b.N; i++ {
			stack := benchStack()
			stack.OSReserveJitter = 0
			stack.Scheduler = "ncq"
			stack.QueueDepth = 32
			stack.Shards = shards
			stack.ShardMode = mode
			exp := &Experiment{
				Name:     "contention-100k",
				Stack:    stack,
				Workload: MixedRegions(4, 25000, 0, 256<<20, 2<<10),
				Runs:     1,
				// One virtual second of issue; the O(threads)
				// backlog drain past `until` dominates the run.
				Duration:  Second,
				ColdCache: true,
				Seed:      uint64(i) + 31,
				Kinds:     []OpKind{workload.OpReadRand},
			}
			res, err := exp.Run()
			if err != nil {
				b.Fatal(err)
			}
			if res.PerRun[0].Ops == 0 {
				b.Fatal("100k-thread run measured no ops")
			}
		}
	}
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("threads=100k/shards=%d", shards), func(b *testing.B) {
			drain(b, shards, ShardModeReplica)
		})
	}
	// The shared-device drain is the speedup headline: the same single
	// device as shards=1, but the 100k threads' VFS/cache work spread
	// over 4 thread shards running concurrently with the device shard.
	// Compare its ns/op against threads=100k/shards=1 at GOMAXPROCS>=2
	// (BENCH_shards in CI records both).
	b.Run("threads=100k/shards=4/mode=shared", func(b *testing.B) {
		drain(b, 4, ShardModeSharedDevice)
	})
	// Open-loop leg: Poisson arrivals just past the disk's closed-loop
	// saturation (~150 ops/s on this scaled stack), short virtual
	// duration like the NVMe legs, so the bench artifacts track the
	// generator/worker-pool dispatch cost and the saturation tail.
	b.Run("dev=hdd/arrival=poisson", func(b *testing.B) {
		var tp, p99, done float64
		for i := 0; i < b.N; i++ {
			stack := benchStack()
			stack.OSReserveJitter = 0
			stack.Scheduler = "ncq"
			stack.QueueDepth = 32
			exp := &Experiment{
				Name:     "contention-openloop",
				Stack:    stack,
				Workload: OpenLoopRead(1<<30, 2<<10, 16, 180),
				Runs:     1, Duration: 5 * Second, MeasureWindow: 2 * Second,
				ColdCache: true,
				Seed:      uint64(i) + 31,
				Kinds:     []OpKind{workload.OpReadRand},
			}
			res, err := exp.Run()
			if err != nil {
				b.Fatal(err)
			}
			tp = res.Throughput.Mean
			p99 = float64(res.Hist.Percentile(99)) / 1e6
			done = res.Load.CompletionRatio()
		}
		b.ReportMetric(tp, "ops/s")
		b.ReportMetric(p99, "p99-ms")
		b.ReportMetric(done*100, "completed-%")
	})
}

// BenchmarkSimulatorThroughput measures the simulator itself: how
// many virtual operations per wall-clock second the memory-bound
// random-read path sustains.
func BenchmarkSimulatorThroughput(b *testing.B) {
	stack := benchStack()
	stack.OSReserveJitter = 0
	m, err := stack.Build(sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	fd, now, err := m.Create(0, "/bench")
	if err != nil {
		b.Fatal(err)
	}
	if now, err = m.Write(now, fd, 0, 16<<20); err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := rng.Int63n(16<<20/2048) * 2048
		_, done, err := m.Read(now, fd, off, 2048)
		if err != nil {
			b.Fatal(err)
		}
		now = done
	}
}

// BenchmarkExperimentOverhead measures a complete small experiment
// end to end (stack build, setup, run, summarize).
func BenchmarkExperimentOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp := &Experiment{
			Name:     "tiny",
			Stack:    benchStack(),
			Workload: RandomRead(4<<20, 2<<10, 1),
			Runs:     1, Duration: Second,
			Seed: uint64(i),
		}
		if _, err := exp.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
